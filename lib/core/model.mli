(** The paper's analytical execution-time model (Section 4).

    Given the machine parameters, the stencil's per-iteration compute time
    C_iter, a problem instance and a tiling configuration, {!predict}
    evaluates the closed-form T_alg of Equations 6 (1D), 17 (2D) and 30
    (3D), built from:

    - N_w, the number of wavefronts (Equation 3);
    - w, the number of blocks per wavefront (Equation 5);
    - m', the per-chunk global-traffic time (Equations 8, 14, 25);
    - c, the per-chunk compute time (Equations 9, 15, 27);
    - k, the hyper-threading factor, bounded by shared memory (Equation 11 —
      the register term is deliberately absent: it is unknowable before the
      backend compiler runs, see Section 6.1);
    - the per-tile combinators of Equations 10/12 (1D), 16 (2D), 28/29 (3D).

    The model is *deliberately optimistic* (Section 1): it assumes full lane
    utilisation, free overlap up to the max(m', c) bound, no divergence, no
    bank conflicts, no spills.  Its contract is accuracy on well-performing
    configurations, not on the whole space (Section 5.3). *)

type prediction = {
  talg : float;  (** predicted total execution time, seconds *)
  t_tile : float;  (** time of one tile / prism / slab (T_tile, T_prism) *)
  m_transfer : float;  (** m': per-chunk global-traffic time *)
  c_compute : float;  (** c: per-chunk compute time *)
  k : int;  (** hyper-threading factor used *)
  n_wavefronts : int;  (** N_w *)
  wavefront_blocks : int;  (** w *)
  sm_rounds : int;  (** ceil(ceil(w/k) / nSM) *)
  shared_words : int;  (** M_tile *)
  io_words : int;  (** m_i + m_o per chunk *)
  chunks : int;  (** sub-prisms / sub-slabs per block *)
}

val feasible :
  Params.t -> Hextime_stencil.Problem.t -> Hextime_tiling.Config.t -> (unit, string) result
(** The feasibility constraints of Equation 31 that the model can see:
    M_tile within the per-block shared-memory cap and the structural tile
    constraints (checked at {!Hextime_tiling.Config.make} time). *)

type variant = Refined | Paper_verbatim
(** [Paper_verbatim] evaluates the printed equations exactly: the idealised
    hexagon widths of Equation 4 and the double-ceiling round count of
    Equation 2.  [Refined] (the default) applies two discretisation-honest
    corrections that matter only in corners of the space: (a) it uses the
    mean row width of the two staggered tile families (the exact lattice
    shows one family's base is wider by [2 * order], so the verbatim widths
    undercount work — a spurious 2x at degenerate shapes like t_s = 1,
    t_t = 2); and (b) it charges the ragged final scheduling round at its
    actual depth instead of a full k-deep round (the verbatim form
    overcounts by up to 2x when k is large and w mod (k * nSM) is small).
    The bench's ablation quantifies both. *)

val predict :
  ?variant:variant ->
  Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  Hextime_tiling.Config.t ->
  (prediction, string) result
(** Evaluate the model.  Fails on rank mismatch or infeasible configuration.
    [citer] is the measured C_iter for this stencil on this machine
    (Table 4). *)

(** The model's term structure, polymorphic over the arithmetic.
    [Calc (Arith.Scalar)] is the concrete evaluation {!predict} runs —
    bit-identical to the historical inline code (the golden test freezes
    the floats).  [Calc (Arith.Interval)] evaluates the same terms over
    boxes of [(t_T, t_S)] and returns certified enclosures: every concrete
    evaluation at a point inside the box lands inside the corresponding
    interval ({!Hextime_analysis.Hexabs} builds on this). *)
module Calc (A : Arith.S) : sig
  type terms = {
    c_talg : A.float_t;
    c_t_tile : A.float_t;
    c_m_transfer : A.float_t;
    c_c_compute : A.float_t;
    c_k : A.int_t;
    c_n_wavefronts : A.int_t;
    c_wavefront_blocks : A.int_t;
    c_sm_rounds : A.int_t;
    c_shared_words : A.int_t;
    c_io_words : A.int_t;
    c_chunks : A.int_t;
  }

  val evaluate :
    ?variant:variant ->
    Params.t ->
    citer:float ->
    order:int ->
    word_factor:int ->
    space:int array ->
    time:int ->
    t_t:A.int_t ->
    t_s:A.int_t array ->
    terms
  (** Evaluate every model term.  [order], [word_factor], [space] and
      [time] are the problem-side constants; [t_t]/[t_s] are the abstract
      tile coordinates.  Preconditions (asserted by the interval
      arithmetic): rank 1..3, positive tile extents, even positive
      [t_t]. *)
end

val hyperthreading_factor : Params.t -> shared_words:int -> int
(** k from Equation 11 restricted to the shared-memory and MTB_SM terms:
    [min MTB_SM (M_SM / M_tile)]. *)

val attribution_of_prediction :
  ?variant:variant ->
  Params.t ->
  rank:int ->
  t_t:int ->
  prediction ->
  Hextime_obs.Attribution.components
(** Split a prediction's talg into the paper's component terms (compute,
    global-memory transfer, synchronisation, launch).  Every combinator in
    {!predict} is linear in (m', c) once the max(m', c) branch decisions
    are fixed; this mirrors those decisions, so the component sum rebuilds
    [talg] up to float rounding (the tests assert 1e-9 relative).
    [shared_mem] is zero: M_tile only bounds k (Equation 11), it has no
    time term of its own.  [variant] must match the one used to compute the
    prediction. *)

val attribution :
  ?variant:variant ->
  Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  Hextime_tiling.Config.t ->
  (prediction * Hextime_obs.Attribution.components, string) result
(** {!predict} plus {!attribution_of_prediction} in one call. *)

type schedule_counts = {
  sched_io_words : int;  (** words any conforming schedule moves per chunk *)
  sched_shared_words : int;  (** words it must allocate (M_tile) *)
  sched_chunks : int;  (** chunk-loop trip count per block *)
  sched_syncs_per_chunk : int;  (** barriers per chunk: t_T rows + 2 staging *)
  sched_wavefronts : int;  (** host-side launch rounds (N_w) *)
  sched_wavefront_blocks : int;  (** blocks per launch (w) *)
}

val scheduled_counts : prediction -> t_t:int -> schedule_counts
(** The discrete counts a lowered schedule must realise for this prediction
    to price it: the model's time formulas charge exactly these transfers,
    allocations, trip counts and barriers.  The hexlint conformance pass
    ({!Hextime_analysis.Hexlint}) checks the kernel IR against them. *)

val pp_prediction : Format.formatter -> prediction -> unit

val explain :
  Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  Hextime_tiling.Config.t ->
  (string, string) result
(** A step-by-step rendering of the prediction: each of the paper's
    equations with this configuration's numbers substituted — the
    derivation a reader would do by hand to audit a data point. *)
