(** Table 1 of the paper: the execution-time model's parameters, their
    classification and where each one lives in this code base.

    Parameters are Elementary (measured or chosen) or Composite (functions
    of others), and come from the Software (compiler/user choices), Hardware
    (machine) or Problem (stencil/size) domains. *)

type origin = Software | Hardware | Problem_class
type kind = Elementary | Composite

type entry = {
  name : string;  (** the paper's symbol, e.g. "tau_sync" *)
  kind : kind;
  origin : origin list;  (** C_iter is software+hardware, hence a list *)
  description : string;
  where : string;  (** module/field implementing it *)
}

val table1 : entry list
(** All rows of Table 1, in the paper's order. *)

val find : string -> entry option
(** Look up a parameter by symbol. *)

val render : unit -> string
(** Plain-text rendering in the style of the other table reproductions. *)
