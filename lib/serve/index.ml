module Arch = Hextime_gpu.Arch
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Attribution = Hextime_obs.Attribution
module Minijson = Hextime_prelude.Minijson

let schema = "hextime-serve-index-v1"

type entry = {
  e_key : string;
  e_arch : string;
  e_stencil : string;
  e_space : int array;
  e_time : int;
  e_config : Config.t;
  e_talg : float;
  e_components : Attribution.components;
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 64
let size (t : t) = Hashtbl.length t
let find (t : t) key = Hashtbl.find_opt t key
let add (t : t) e = Hashtbl.replace t e.e_key e

let entries (t : t) =
  Hashtbl.fold (fun _ e acc -> e :: acc) t []
  |> List.sort (fun a b -> String.compare a.e_key b.e_key)

let entry_of_answer (arch : Arch.t) (problem : Problem.t)
    (a : Advisor.answer) =
  {
    e_key = Advisor.request_key arch problem;
    e_arch = arch.Arch.name;
    e_stencil = problem.Problem.stencil.Stencil.name;
    e_space = Array.copy problem.Problem.space;
    e_time = problem.Problem.time;
    e_config = a.Advisor.a_config;
    e_talg = a.Advisor.a_talg;
    e_components = a.Advisor.a_components;
  }

let answer_of_entry e =
  {
    Advisor.a_config = e.e_config;
    a_talg = e.e_talg;
    a_components = e.e_components;
  }

(* --- JSON (de)serialisation ----------------------------------------------- *)

let num f = Minijson.Num f
let int_num i = num (float_of_int i)
let int_list xs = Minijson.List (List.map int_num (Array.to_list xs))

let config_to_json (c : Config.t) =
  Minijson.Obj
    [
      ("t_t", int_num c.Config.t_t);
      ("t_s", int_list c.Config.t_s);
      ("threads", int_list c.Config.threads);
    ]

let entry_to_json e =
  Minijson.Obj
    [
      ("key", Minijson.Str e.e_key);
      ("arch", Minijson.Str e.e_arch);
      ("stencil", Minijson.Str e.e_stencil);
      ("space", int_list e.e_space);
      ("time", int_num e.e_time);
      ("config", config_to_json e.e_config);
      ("talg", num e.e_talg);
      ("attribution", Attribution.components_to_json e.e_components);
    ]

let to_json (t : t) =
  Minijson.Obj
    [
      ("schema", Minijson.Str schema);
      ("code_version", Minijson.Str Advisor.code_version);
      ("entries", Minijson.List (List.map entry_to_json (entries t)));
    ]

let field name j = Minijson.member name j
let str name j = Option.bind (field name j) Minijson.string
let flt name j = Option.bind (field name j) Minijson.number

let int_field name j =
  Option.map int_of_float (Option.bind (field name j) Minijson.number)

let ints name j =
  match field name j with
  | Some (Minijson.List xs) ->
      let vals = List.filter_map Minijson.number xs in
      if List.length vals = List.length xs then
        Some (Array.of_list (List.map int_of_float vals))
      else None
  | _ -> None

let components_of_json j =
  let f name = Option.value ~default:0.0 (flt name j) in
  {
    Attribution.compute = f "compute";
    global_mem = f "global_mem";
    shared_mem = f "shared_mem";
    sync = f "sync";
    launch = f "launch";
    jitter = f "jitter";
  }

let entry_of_json j =
  match
    ( str "key" j,
      str "arch" j,
      str "stencil" j,
      ints "space" j,
      int_field "time" j,
      field "config" j,
      flt "talg" j,
      field "attribution" j )
  with
  | ( Some key,
      Some arch,
      Some stencil,
      Some space,
      Some time,
      Some cfg_j,
      Some talg,
      Some attr_j ) -> (
      match
        (int_field "t_t" cfg_j, ints "t_s" cfg_j, ints "threads" cfg_j)
      with
      | Some t_t, Some t_s, Some threads -> (
          match Config.make ~t_t ~t_s ~threads with
          | Error e -> Error (Printf.sprintf "index entry %s: %s" key e)
          | Ok config ->
              Ok
                {
                  e_key = key;
                  e_arch = arch;
                  e_stencil = stencil;
                  e_space = space;
                  e_time = time;
                  e_config = config;
                  e_talg = talg;
                  e_components = components_of_json attr_j;
                })
      | _ -> Error "index entry: malformed config")
  | _ -> Error "index entry: missing field"

let of_json j =
  match (str "schema" j, str "code_version" j, field "entries" j) with
  | Some s, _, _ when s <> schema ->
      Error (Printf.sprintf "index: unknown schema %S (expected %S)" s schema)
  | _, Some v, _ when v <> Advisor.code_version ->
      (* recommendations from older advisor semantics must not be served:
         an index from a previous code version loads as empty-handed *)
      Error
        (Printf.sprintf "index: stale code version %S (current %S)" v
           Advisor.code_version)
  | Some _, Some _, Some (Minijson.List es) ->
      let t = create () in
      let rec go = function
        | [] -> Ok t
        | e :: rest -> (
            match entry_of_json e with
            | Error msg -> Error msg
            | Ok entry ->
                add t entry;
                go rest)
      in
      go es
  | _ -> Error "index: missing schema, code_version or entries"

let save (t : t) ~path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match open_out tmp with
  | exception Sys_error e -> Error e
  | oc -> (
      let ok =
        try
          output_string oc (Minijson.render (to_json t));
          true
        with Sys_error _ -> false
      in
      close_out_noerr oc;
      if not ok then begin
        (try Sys.remove tmp with Sys_error _ -> ());
        Error (Printf.sprintf "index: short write to %s" tmp)
      end
      else
        match Sys.rename tmp path with
        | () -> Ok ()
        | exception Sys_error e ->
            (try Sys.remove tmp with Sys_error _ -> ());
            Error e)

let load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic -> (
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in_noerr ic;
      match Minijson.parse text with
      | Error e -> Error (Printf.sprintf "index %s: %s" path e)
      | Ok j -> of_json j)
