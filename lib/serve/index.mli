(** The precomputed arg-min index: a compact on-disk snapshot mapping
    [digest(stencil, arch, problem)] to the recommended configuration, its
    predicted Talg and the Section-5 cost attribution.

    On disk the index is one versioned Minijson document; in memory it is
    a hash table keyed by {!Advisor.request_key}, so a warm lookup is one
    string hash — the sub-millisecond path hexserve answers from.  The
    file stamps {!Advisor.code_version}: an index produced by older
    advisor semantics refuses to load rather than serve stale
    recommendations (the server then falls back to the cold path and
    rebuilds entries by write-back). *)

type entry = {
  e_key : string;  (** {!Advisor.request_key} digest *)
  e_arch : string;  (** architecture preset name, for humans/clients *)
  e_stencil : string;
  e_space : int array;
  e_time : int;
  e_config : Hextime_tiling.Config.t;
  e_talg : float;
  e_components : Hextime_obs.Attribution.components;
}

type t

val schema : string

val create : unit -> t
val size : t -> int
val find : t -> string -> entry option

val add : t -> entry -> unit
(** Insert or replace by [e_key] — the server's cold-miss write-back. *)

val entries : t -> entry list
(** Sorted by key: serialisation is deterministic. *)

val entry_of_answer :
  Hextime_gpu.Arch.t -> Hextime_stencil.Problem.t -> Advisor.answer -> entry

val answer_of_entry : entry -> Advisor.answer

val entry_to_json : entry -> Hextime_prelude.Minijson.t
val entry_of_json : Hextime_prelude.Minijson.t -> (entry, string) result

val to_json : t -> Hextime_prelude.Minijson.t
val of_json : Hextime_prelude.Minijson.t -> (t, string) result

val save : t -> path:string -> (unit, string) result
(** Atomic: renders to [path ^ ".tmp.<pid>"], then renames. *)

val load : path:string -> (t, string) result
