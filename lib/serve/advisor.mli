(** The tile advisor's answer computation: one (architecture, problem)
    query in, one recommended configuration out.

    This is the hexserve cold path and the index builder's worker, shared
    so a cold miss served live and an index entry built offline are
    guaranteed to agree.  The solver is {!Hextime_tileopt.Descent.solve}
    in its [`Symbolic] seed mode: {!Hextime_analysis.Hexabs.minimize}
    certifies the Talg arg-min over the tile lattice with ~1 concrete
    model evaluation, the descent polishes from that seed (a no-op at the
    optimum, by construction), and the answer carries the predicted Talg
    plus its Section-5 cost attribution. *)

val code_version : string
(** Versions {!request_key} and the index schema together: bump it and
    every cached recommendation misses. *)

type answer = {
  a_config : Hextime_tiling.Config.t;  (** recommended configuration *)
  a_talg : float;  (** predicted T_alg at the recommendation, seconds *)
  a_components : Hextime_obs.Attribution.components;
      (** Section-5 breakdown of [a_talg] *)
}

val request_key : Hextime_gpu.Arch.t -> Hextime_stencil.Problem.t -> string
(** Digest of everything the answer depends on — code version, the
    architecture's pricing numbers, the derived model parameters, the
    measured C_iter, the problem instance — in the style of
    [Sweep.point_key]: pricing-neutral edits (renames, preset reshuffles)
    keep the key, pricing changes invalidate it.  Forces the (memoized)
    micro-benchmarks for the architecture on first use. *)

val config_of_shape :
  Hextime_tileopt.Space.shape -> (Hextime_tiling.Config.t, string) result
(** Attach the serving thread-count policy (256 threads per block, falling
    back to 128 when the shape's structural constraints reject it). *)

val solve :
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  (answer, string) result
(** Compute the recommendation from scratch (the cold path).  Returns the
    exhaustive-sweep arg-min configuration without the exhaustive sweep. *)
