(** The tile advisor's answer computation: one (architecture, problem)
    query in, one recommended configuration out.

    This is the hexserve cold path and the index builder's worker, shared
    so a cold miss served live and an index entry built offline are
    guaranteed to agree.  The solver is {!Hextime_tileopt.Descent.solve}
    in its [`Symbolic] seed mode: {!Hextime_analysis.Hexabs.minimize}
    certifies the Talg arg-min over the tile lattice with ~1 concrete
    model evaluation, the descent polishes from that seed (a no-op at the
    optimum, by construction), and the answer carries the predicted Talg
    plus its Section-5 cost attribution. *)

val code_version : string
(** Versions {!request_key} and the index schema together: bump it and
    every cached recommendation misses. *)

type answer = {
  a_config : Hextime_tiling.Config.t;  (** recommended configuration *)
  a_talg : float;  (** predicted T_alg at the recommendation, seconds *)
  a_components : Hextime_obs.Attribution.components;
      (** Section-5 breakdown of [a_talg] *)
}

val request_key : Hextime_gpu.Arch.t -> Hextime_stencil.Problem.t -> string
(** Digest of everything the answer depends on — code version, the
    architecture's pricing numbers, the derived model parameters, the
    measured C_iter, the problem instance — in the style of
    [Sweep.point_key]: pricing-neutral edits (renames, preset reshuffles)
    keep the key, pricing changes invalidate it.  Forces the (memoized)
    micro-benchmarks for the architecture on first use. *)

val config_of_shape :
  Hextime_tileopt.Space.shape -> (Hextime_tiling.Config.t, string) result
(** Attach the serving thread-count policy (256 threads per block, falling
    back to 128 when the shape's structural constraints reject it). *)

val solve :
  ?req_id:string ->
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  (answer, string) result
(** Compute the recommendation from scratch (the cold path).  Returns the
    exhaustive-sweep arg-min configuration without the exhaustive sweep.
    When tracing is enabled the solve is wrapped in an [advisor.solve]
    span carrying [req_id] (the serving request id), so a slow cold solve
    is attributable to the request that paid for it. *)

(** {1 Online drift auditing}

    The paper's structural-accuracy claim — the optimistic model is
    accurate on the top band and its arg-min stays in-band — validated
    {e live} against a served answer instead of offline against a
    baseline file. *)

type audit = {
  au_exact_talg : float;
      (** predicted Talg of the exhaustive-sweep arg-min, recomputed now *)
  au_config_talg : float;
      (** the model's {e current} prediction for the served configuration
          (NaN if the model now rejects it) *)
  au_served_talg : float;  (** the Talg the client was told *)
  au_rel_err : float;
      (** relative Talg error of the served answer vs the exhaustive
          arg-min: [(config_talg - exact_talg) / exact_talg] *)
  au_in_band : bool;
      (** the served configuration's current prediction is within
          [band_tol] of the exhaustive arg-min {e and} the served Talg
          still matches the model's prediction for it (a stale index
          fails either way) *)
  au_argmin_match : bool;
      (** served tile shape equals the exhaustive arg-min's (threads
          excluded: Talg is thread-independent by construction) *)
  au_feasible : int;  (** feasible shapes enumerated by the audit *)
}

val audit :
  ?band_tol:float ->
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  config:Hextime_tiling.Config.t ->
  talg:float ->
  (audit, string) result
(** Re-verify a served answer against the exhaustive arg-min.
    [band_tol] defaults to [0.2], the paper's Section-6 20% band (the
    same tolerance the offline accuracy gate uses for [argmin_in_band]).
    [Error] only when the feasible space is empty. *)
