(** The hexserve advisory server: a single-binary Unix-domain-socket
    service answering tile-size queries from the precomputed arg-min
    {!Index} with O(1) warm lookups, and batching concurrent cold misses
    through the {!Hextime_parsweep.Parsweep} pool.

    The request loop is a single-threaded [select] multiplexer.  Warm hits
    are answered inside the drain round; cold misses accumulated during a
    round are solved as {e one} pool batch ({!Advisor.solve} per unique
    digest), written back into the in-memory index, persisted atomically
    to [index_path] and only then answered — so the next ask for any of
    them is warm.

    {b hexpulse} — the serving telemetry stack layered on
    {!Hextime_obs.Metrics}:

    - counters [serve.requests], [serve.warm_hits], [serve.cold_misses],
      [serve.errors], [serve.audits], [serve.audits_out_of_band],
      [serve.http_scrapes], [serve.access_log_lines]; latency histograms
      [serve.warm_seconds], [serve.cold_seconds];
    - vitals gauges [serve.uptime_s], [serve.index_entries],
      [serve.requests_in_flight] (also riding along in every answer and
      stats reply), scrape-time quantile gauges [serve.warm_p50_us],
      [serve.warm_p99_us];
    - rolling SLO windows ({!Hextime_obs.Slo}, [slo.*] gauges) fed by
      every answered request and ticked each loop iteration;
    - the drift monitor: sampled served answers re-verified against the
      exhaustive arg-min ({!Advisor.audit}) off the request path, each
      verdict appended as an [audit] ledger record and folded into
      [serve.audit_inband_ratio]; [serve.drift_alarm] latches to 1 while
      the rolling in-band ratio is below [drift_min_ratio].

    Everything is visible three ways: the [stats] frame (JSON snapshot),
    the [metrics] frame and plain-HTTP [GET /metrics] on [http_port]
    (both the same {!Hextime_obs.Openmetrics} text exposition), and the
    structured JSONL access log ({!Access_log}) with per-request ids and
    slow-cold-solve attribution dumps. *)

type summary = {
  requests : int;  (** ask requests answered (warm + cold + rejected) *)
  warm_hits : int;
  cold_misses : int;
  errors : int;
  audits : int;  (** drift audits executed *)
  audits_out_of_band : int;  (** audits whose answer fell out of band *)
  drift_alarm : bool;  (** alarm state at shutdown *)
  scrapes : int;  (** HTTP [GET /metrics] requests served *)
}

val run :
  ?index_path:string ->
  ?exec:Hextime_parsweep.Parsweep.exec ->
  ?max_requests:int ->
  ?on_ready:(unit -> unit) ->
  ?http_port:int ->
  ?on_http_port:(int -> unit) ->
  ?access_log_path:string ->
  ?slow_us:float ->
  ?slo:Hextime_obs.Slo.spec ->
  ?audit_rate:int ->
  ?audit_cold:bool ->
  ?drift_min_ratio:float ->
  ?ledger_path:string ->
  socket_path:string ->
  unit ->
  summary
(** Serve until a [shutdown] request arrives, until [max_requests] ask
    requests have been answered, or until SIGINT/SIGTERM.  All exits take
    the same graceful path: persist the index, flush and close the access
    log, close clients, unlink the socket.  A signal-driven exit
    additionally appends one [kind = "serve"] record to [ledger_path]
    (label [shutdown = sigint|sigterm]) carrying the final vitals and the
    full metrics snapshot; the previous signal dispositions are restored
    before [run] returns.  [index_path] is loaded if it exists
    (stale or malformed indexes are discarded with a warning) and is the
    write-back target for cold-miss answers; without it the index lives
    only in memory.  [exec] drives the cold-path batch and the audit
    batches (default {!Hextime_parsweep.Parsweep.serial} — callers that
    spawned domains must not use the fork backend).  [on_ready] fires
    after the sockets are bound and listening, before the first accept:
    tests use it to release clients.  The socket file is unlinked on
    exit.

    hexpulse knobs: [http_port] additionally binds a loopback TCP socket
    answering [GET /metrics] ([0] picks an ephemeral port, reported via
    [on_http_port]).  [access_log_path] appends one JSONL record per
    answered request; a cold solve slower than [slow_us] (default: never)
    logs its Section-5 attribution alongside.  [slo] configures the
    rolling windows (default {!Hextime_obs.Slo.default_spec}).
    [audit_rate] [> 0] re-verifies every Nth warm answer against the
    exhaustive arg-min; [audit_cold] also audits every cold solve.
    Verdicts append [audit] records to [ledger_path] — each carrying the
    problem's provenance labels (arch, stencil, space, time, config) and
    the served config's [attr.*]/[pred.*] attribution metrics, the raw
    material for [hextime explain] — and drive [serve.drift_alarm]
    against [drift_min_ratio] (default [0.99]); alarm transitions also
    feed the live [alert.firing]/[alert.fired] hexlens gauges. *)
