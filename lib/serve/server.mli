(** The hexserve advisory server: a single-binary Unix-domain-socket
    service answering tile-size queries from the precomputed arg-min
    {!Index} with O(1) warm lookups, and batching concurrent cold misses
    through the {!Hextime_parsweep.Parsweep} pool.

    The request loop is a single-threaded [select] multiplexer.  Warm hits
    are answered inside the drain round; cold misses accumulated during a
    round are solved as {e one} pool batch ({!Advisor.solve} per unique
    digest), written back into the in-memory index, persisted atomically
    to [index_path] and only then answered — so the next ask for any of
    them is warm.  Telemetry (counters [serve.requests],
    [serve.warm_hits], [serve.cold_misses], [serve.errors]; latency
    histograms [serve.warm_seconds], [serve.cold_seconds]) flows through
    {!Hextime_obs.Metrics} and is visible via the [stats] request. *)

type summary = {
  requests : int;  (** ask requests answered (warm + cold + rejected) *)
  warm_hits : int;
  cold_misses : int;
  errors : int;
}

val run :
  ?index_path:string ->
  ?exec:Hextime_parsweep.Parsweep.exec ->
  ?max_requests:int ->
  ?on_ready:(unit -> unit) ->
  socket_path:string ->
  unit ->
  summary
(** Serve until a [shutdown] request arrives, or until [max_requests] ask
    requests have been answered.  [index_path] is loaded if it exists
    (stale or malformed indexes are discarded with a warning) and is the
    write-back target for cold-miss answers; without it the index lives
    only in memory.  [exec] drives the cold-path batch (default
    {!Hextime_parsweep.Parsweep.serial} — callers that spawned domains
    must not use the fork backend).  [on_ready] fires after the socket is
    bound and listening, before the first accept: tests use it to release
    clients.  The socket file is unlinked on exit. *)
