(** Structured JSONL access log for the serving loop.

    One compact JSON record per answered request: [ts] (unix seconds),
    [req_id], [key] (request digest; [""] when the request never
    resolved to one), [source] ([warm]/[cold]/[error]), [latency_us],
    optionally [digest] (the recommended configuration's stable id),
    [error] (the message sent to the client), and — for cold solves
    over the slow-query threshold — [slow: true] plus the answer's
    Section-5 cost [attribution].

    Records are buffered, not flushed per line: a per-record flush is a
    write syscall on the warm path (~10% of the whole round-trip in the
    A/B bench).  Each line is a single [output_string], so records
    never tear; the serving loop calls {!maybe_flush} once per drain
    round, which flushes at most once per second, and {!close} flushes
    the tail — a tailing consumer sees whole records at most a second
    late.

    Every record also bumps the [serve.access_log_lines] counter, so the
    log's write rate is itself scrapeable. *)

type t

val open_ : path:string -> (t, string) result
(** Append mode; the file is created if missing. *)

val log :
  t ->
  ts:float ->
  req_id:string ->
  key:string ->
  source:string ->
  latency_us:float ->
  ?digest:string ->
  ?error:string ->
  ?attribution:Hextime_prelude.Minijson.t ->
  unit ->
  unit
(** Best-effort: write failures (disk full, rotated directory) are
    swallowed — the serving loop must not die for its log. *)

val maybe_flush : t -> now:float -> unit
(** Flush buffered records if at least a second has passed since the
    last flush (best-effort, like {!log}). *)

val path : t -> string
val lines : t -> int

val close : t -> unit
(** Flushes buffered records, then closes. *)
