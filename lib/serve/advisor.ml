module Arch = Hextime_gpu.Arch
module Problem = Hextime_stencil.Problem
module Params = Hextime_core.Params
module Model = Hextime_core.Model
module Config = Hextime_tiling.Config
module Space = Hextime_tileopt.Space
module Descent = Hextime_tileopt.Descent
module Attribution = Hextime_obs.Attribution
module Det_hash = Hextime_prelude.Det_hash
module Microbench = Hextime_harness.Microbench
module Optimizer = Hextime_tileopt.Optimizer
module Trace = Hextime_obs.Trace

(* Bump whenever the recommendation a digest maps to can change meaning:
   the model, the solver's arg-min semantics, or the thread-selection rule.
   Index entries and request keys from older code must miss. *)
let code_version = "hextime-serve-v1"

type answer = {
  a_config : Config.t;
  a_talg : float;
  a_components : Attribution.components;
}

(* The same digest-the-pricing-inputs scheme as Sweep.point_key, minus the
   per-point configuration: a request's answer is a function of exactly
   the code version, the architecture's numeric description, the derived
   model parameters, the stencil's measured C_iter, and the problem
   instance.  Renaming an architecture or reshuffling presets leaves the
   key unchanged; touching any number the recommendation depends on
   invalidates it. *)
let request_key (arch : Arch.t) (problem : Problem.t) =
  let params = Microbench.params arch in
  let citer = Microbench.citer arch problem.Problem.stencil in
  let h = Det_hash.create "hextime-ask" in
  let h = Det_hash.mix_string h code_version in
  let h = Arch.mix_pricing h arch in
  let h = Params.mix_pricing h params in
  let h = Det_hash.mix_float h citer in
  let h = Problem.mix_pricing h problem in
  Printf.sprintf "ask|%s|%016Lx" code_version (Det_hash.to_int64 h)

(* Thread-per-block choice for the recommended configuration.  Talg does
   not depend on threads (a deliberate model property, Section 7), so the
   arg-min is a shape; 256 is the empirical default the CLI's tune
   command uses for the pure-model pick, with a fallback for shapes whose
   structural constraints reject it. *)
let config_of_shape (shape : Space.shape) =
  let try_threads n =
    match Space.to_config shape ~threads:[| n |] with
    | cfg -> Some cfg
    | exception Invalid_argument _ -> None
  in
  match try_threads 256 with
  | Some cfg -> Ok cfg
  | None -> (
      match try_threads 128 with
      | Some cfg -> Ok cfg
      | None -> Error "advisor: no valid thread count for the arg-min shape")

let solve ?(req_id = "") (arch : Arch.t) (problem : Problem.t) =
  (* The span carries the serving request id, so a slow cold solve in a
     trace dump is attributable to the request that paid for it. *)
  Trace.with_span "advisor.solve" ~cat:"serve"
    ~args:(fun () ->
      [
        ("req_id", req_id);
        ("arch", arch.Arch.name);
        ("stencil", problem.Problem.stencil.Hextime_stencil.Stencil.name);
      ])
    (fun () ->
      let params = Microbench.params arch in
      let citer = Microbench.citer arch problem.Problem.stencil in
      (* `Symbolic seeds the multi-start descent with Hexabs' certified
         branch-and-bound arg-min first; descent only ever accepts strict
         improvements and the cross-restart fold keeps the first optimum, so
         the returned shape is exactly the certified (= exhaustive) arg-min
         at ~1 concrete model evaluation instead of a full enumeration. *)
      match Descent.solve ~seed_mode:`Symbolic params ~citer problem with
      | Error e -> Error e
      | Ok sol -> (
          match config_of_shape sol.Descent.shape with
          | Error e -> Error e
          | Ok cfg -> (
              match Model.attribution params ~citer problem cfg with
              | Error e -> Error (Printf.sprintf "advisor: attribution: %s" e)
              | Ok (prediction, components) ->
                  Ok
                    {
                      a_config = cfg;
                      a_talg = prediction.Model.talg;
                      a_components = components;
                    })))

(* --- online drift auditing ------------------------------------------------- *)

type audit = {
  au_exact_talg : float;
  au_config_talg : float;
  au_served_talg : float;
  au_rel_err : float;
  au_in_band : bool;
  au_argmin_match : bool;
  au_feasible : int;
}

(* Re-verify a served answer against the ground truth the index is supposed
   to cache: the exhaustive arg-min over the feasible space, recomputed with
   the *current* model.  Two independent failure modes both land out of
   band: a configuration that was never (or is no longer) within the
   paper's 20% band of the arg-min, and a stale served Talg that no longer
   matches what the model says about that same configuration. *)
let audit ?(band_tol = 0.2) (arch : Arch.t) (problem : Problem.t)
    ~(config : Config.t) ~(talg : float) =
  let params = Microbench.params arch in
  let citer = Microbench.citer arch problem.Problem.stencil in
  match Optimizer.evaluate_space params ~citer problem with
  | [] -> Error "audit: empty feasible space"
  | evaluated ->
      let exact = Optimizer.best evaluated in
      let exact_talg = exact.Optimizer.prediction.Model.talg in
      let config_talg =
        match Model.predict params ~citer problem config with
        | Ok p -> p.Model.talg
        | Error _ -> Float.nan
      in
      let rel_err = (config_talg -. exact_talg) /. exact_talg in
      (* NaN-safe: a rejected config (config_talg = NaN) fails both
         comparisons and lands out of band, as it should. *)
      let in_band =
        config_talg <= (1.0 +. band_tol) *. exact_talg
        && Float.abs (talg -. config_talg) <= 1e-9 *. Float.abs config_talg
      in
      let argmin_match =
        (* threads excluded: Talg is thread-independent by construction,
           so the serving thread policy is not part of the arg-min. *)
        let best_shape = exact.Optimizer.shape in
        match config_of_shape best_shape with
        | Error _ -> false
        | Ok best_cfg ->
            config.Config.t_t = best_cfg.Config.t_t
            && config.Config.t_s = best_cfg.Config.t_s
      in
      Ok
        {
          au_exact_talg = exact_talg;
          au_config_talg = config_talg;
          au_served_talg = talg;
          au_rel_err = rel_err;
          au_in_band = in_band;
          au_argmin_match = argmin_match;
          au_feasible = List.length evaluated;
        }
