module Arch = Hextime_gpu.Arch
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Parsweep = Hextime_parsweep.Parsweep
module Metrics = Hextime_obs.Metrics
module Openmetrics = Hextime_obs.Openmetrics
module Slo = Hextime_obs.Slo
module Ledger = Hextime_obs.Ledger
module Attribution = Hextime_obs.Attribution
module Alert = Hextime_obs.Alert
module Explain = Hextime_harness.Explain
module Microbench = Hextime_harness.Microbench
module Model = Hextime_core.Model

(* Serving telemetry.  The latency histograms power the p50/p90/p99
   estimates Metrics.quantile exposes in snapshots — the bench additionally
   measures warm latency exactly, client-side. *)
let requests_counter = Metrics.counter "serve.requests"
let warm_counter = Metrics.counter "serve.warm_hits"
let cold_counter = Metrics.counter "serve.cold_misses"
let error_counter = Metrics.counter "serve.errors"
let warm_hist = Metrics.histogram "serve.warm_seconds"
let cold_hist = Metrics.histogram "serve.cold_seconds"

(* hexpulse: serving vitals and the drift monitor, all scrapeable. *)
let audits_counter = Metrics.counter "serve.audits"
let oob_counter = Metrics.counter "serve.audits_out_of_band"
let scrape_counter = Metrics.counter "serve.http_scrapes"
let uptime_gauge = Metrics.gauge "serve.uptime_s"
let entries_gauge = Metrics.gauge "serve.index_entries"
let inflight_gauge = Metrics.gauge "serve.requests_in_flight"
let warm_p50_gauge = Metrics.gauge "serve.warm_p50_us"
let warm_p99_gauge = Metrics.gauge "serve.warm_p99_us"
let drift_alarm_gauge = Metrics.gauge "serve.drift_alarm"
let inband_gauge = Metrics.gauge "serve.audit_inband_ratio"

(* Rolling window of audit verdicts backing the drift alarm: big enough to
   smooth over one unlucky sample at audit_rate=1, small enough that a
   genuinely drifted index trips the alarm within a few dozen asks. *)
let drift_window = 64

type summary = {
  requests : int;  (** ask requests answered (warm + cold + rejected) *)
  warm_hits : int;
  cold_misses : int;
  errors : int;
  audits : int;
  audits_out_of_band : int;
  drift_alarm : bool;
  scrapes : int;  (** HTTP [GET /metrics] requests served *)
}

type state = {
  index : Index.t;
  index_path : string option;
  exec : Parsweep.exec;
  t_start : float;
  slo : Slo.t;
  alog : Access_log.t option;
  slow_us : float;
  audit_rate : int;
  audit_cold : bool;
  drift_min_ratio : float;
  ledger_path : string option;
  mutable dirty : bool;
  mutable requests : int;
  mutable warm_hits : int;
  mutable cold_misses : int;
  mutable errors : int;
  mutable in_flight : int;
  mutable next_req : int;
  mutable audits : int;
  mutable audits_oob : int;
  mutable alarm : bool;
  mutable scrapes : int;
  (* drift verdict ring *)
  ring : bool array;
  mutable ring_len : int;
  mutable ring_pos : int;
}

let fresh_req_id st =
  st.next_req <- st.next_req + 1;
  Printf.sprintf "r%06d" st.next_req

let vitals st ~now =
  [
    ("uptime_s", now -. st.t_start);
    ("index_entries", float_of_int (Index.size st.index));
    ("requests_in_flight", float_of_int st.in_flight);
  ]

(* Refresh the derived gauges, then snapshot.  The warm-latency quantile
   gauges are recomputed from the histogram at scrape time, so a scraped
   [serve_warm_p50_us] always equals [Metrics.quantile] over the same
   snapshot — the round-trip the test suite checks. *)
let refreshed_snapshot st ~now =
  let pre = Metrics.snapshot () in
  (match List.assoc_opt "serve.warm_seconds" pre.Metrics.snap_histograms with
  | Some hs when hs.Metrics.hs_count > 0 ->
      Metrics.set warm_p50_gauge (Metrics.quantile hs 0.5 *. 1e6);
      Metrics.set warm_p99_gauge (Metrics.quantile hs 0.99 *. 1e6)
  | _ -> ());
  Metrics.set uptime_gauge (now -. st.t_start);
  Metrics.set entries_gauge (float_of_int (Index.size st.index));
  Metrics.set inflight_gauge (float_of_int st.in_flight);
  Metrics.snapshot ()

(* Resolve the textual request against the preset tables.  This is also
   where the (memoized) micro-benchmarks for an unseen architecture are
   forced, via Advisor.request_key. *)
let resolve (arch_name : string) (stencil_name : string) space time =
  match Arch.find arch_name with
  | exception Not_found ->
      Error (Printf.sprintf "unknown architecture %S" arch_name)
  | arch -> (
      match Stencil.find stencil_name with
      | exception Not_found ->
          Error (Printf.sprintf "unknown stencil %S" stencil_name)
      | stencil -> (
          match Problem.make stencil ~space ~time with
          | exception Invalid_argument msg -> Error msg
          | problem -> Ok (arch, problem)))

(* Warm every (architecture, stencil) micro-benchmark memo the index
   mentions before accepting connections, so the first live request for an
   indexed context pays one hash lookup and not a micro-benchmark
   campaign.  Computing the request digest forces exactly the memos a
   lookup needs (Microbench.params and citer). *)
let warm_memos index =
  List.iter
    (fun (e : Index.entry) ->
      match
        resolve e.Index.e_arch e.Index.e_stencil e.Index.e_space e.Index.e_time
      with
      | Error _ -> ()
      | Ok (arch, problem) -> ignore (Advisor.request_key arch problem : string))
    (Index.entries index)

let persist st =
  match st.index_path with
  | Some path when st.dirty -> (
      match Index.save st.index ~path with
      | Ok () -> st.dirty <- false
      | Error msg -> Format.eprintf "hexserve: index save: %s@." msg)
  | _ -> ()

(* One queued cold request: who asked, for what, and when it arrived. *)
type pending = {
  p_fd : Unix.file_descr;
  p_req_id : string;
  p_arch : Arch.t;
  p_problem : Problem.t;
  p_key : string;
  p_t0 : float;
}

(* One queued drift audit: a served answer awaiting re-verification
   against the exhaustive arg-min. *)
type audit_task = {
  q_req_id : string;
  q_arch : Arch.t;
  q_problem : Problem.t;
  q_entry : Index.entry;
  q_source : Proto.source;
}

let send_reply fd reply =
  try Proto.write_frame fd (Proto.reply_to_json reply)
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let access_log st ~req_id ~key ~source ~latency_us ?digest ?error ?attribution
    () =
  match st.alog with
  | None -> ()
  | Some log ->
      Access_log.log log ~ts:(Unix.gettimeofday ()) ~req_id ~key ~source
        ~latency_us ?digest ?error ?attribution ()

let answer_error st ?(req_id = "") ?(key = "") ?(t0 = nan) fd msg =
  st.errors <- st.errors + 1;
  Metrics.incr error_counter;
  let now = Unix.gettimeofday () in
  let latency_us = if Float.is_nan t0 then 0.0 else (now -. t0) *. 1e6 in
  Slo.observe st.slo ~now ~warm:false ~error:true
    ~latency_s:(latency_us /. 1e6);
  access_log st ~req_id ~key ~source:"error" ~latency_us ~error:msg ();
  send_reply fd (Proto.Error_reply msg)

(* Answer one ask that resolved to an index entry (warm hit or solved cold
   miss): bump the books, feed the SLO window, log the access — with the
   answer's Section-5 attribution attached when a cold solve blew the
   slow-query threshold — and reply with the entry plus server vitals. *)
let answer_entry st fd ~req_id ~source ~(entry : Index.entry) ~t0 =
  let now = Unix.gettimeofday () in
  let dt = now -. t0 in
  (match source with
  | Proto.Warm ->
      st.warm_hits <- st.warm_hits + 1;
      Metrics.incr warm_counter;
      Metrics.observe warm_hist dt
  | Proto.Cold ->
      st.cold_misses <- st.cold_misses + 1;
      Metrics.incr cold_counter;
      Metrics.observe cold_hist dt);
  Slo.observe st.slo ~now ~warm:(source = Proto.Warm) ~error:false
    ~latency_s:dt;
  let latency_us = dt *. 1e6 in
  let attribution =
    if source = Proto.Cold && latency_us > st.slow_us then
      Some (Attribution.components_to_json entry.Index.e_components)
    else None
  in
  access_log st ~req_id ~key:entry.Index.e_key
    ~source:(Proto.source_to_string source)
    ~latency_us
    ~digest:(Hextime_tiling.Config.id entry.Index.e_config)
    ?attribution ();
  send_reply fd
    (Proto.Answer
       {
         source;
         entry;
         latency_us;
         req_id;
         server = vitals st ~now;
       })

(* Solve every queued cold miss as one batch through the Parsweep pool:
   concurrent misses from independent clients amortize pool startup and
   land in the disk cache under their request digests, then write back
   into the in-memory index (and its on-disk snapshot) so the next ask is
   warm. *)
let solve_batch st (pending : pending list) =
  let tasks =
    List.fold_left
      (fun acc p -> if List.mem_assoc p.p_key acc then acc else (p.p_key, p) :: acc)
      [] pending
    |> List.rev_map snd
  in
  let outcomes, _stats =
    Parsweep.map ~label:"serve cold batch" st.exec
      ~key:(fun p -> p.p_key)
      ~f:(fun p -> Advisor.solve ~req_id:p.p_req_id p.p_arch p.p_problem)
      tasks
  in
  let solved = Hashtbl.create (List.length tasks) in
  List.iter2
    (fun (p : pending) outcome ->
      match outcome with
      | Ok (Ok answer) ->
          let entry = Index.entry_of_answer p.p_arch p.p_problem answer in
          Index.add st.index entry;
          st.dirty <- true;
          Hashtbl.replace solved p.p_key (Ok entry)
      | Ok (Error msg) | Error msg -> Hashtbl.replace solved p.p_key (Error msg))
    tasks outcomes;
  persist st;
  List.filter_map
    (fun (p : pending) ->
      st.requests <- st.requests + 1;
      Metrics.incr requests_counter;
      st.in_flight <- st.in_flight - 1;
      match Hashtbl.find_opt solved p.p_key with
      | Some (Ok entry) ->
          answer_entry st p.p_fd ~req_id:p.p_req_id ~source:Proto.Cold ~entry
            ~t0:p.p_t0;
          if st.audit_cold then
            Some
              {
                q_req_id = p.p_req_id;
                q_arch = p.p_arch;
                q_problem = p.p_problem;
                q_entry = entry;
                q_source = Proto.Cold;
              }
          else None
      | Some (Error msg) ->
          answer_error st ~req_id:p.p_req_id ~key:p.p_key ~t0:p.p_t0 p.p_fd
            ("advisor: " ^ msg);
          None
      | None ->
          answer_error st ~req_id:p.p_req_id ~key:p.p_key ~t0:p.p_t0 p.p_fd
            "advisor: batch lost the request";
          None)
    pending

(* --- drift monitor --------------------------------------------------------- *)

let record_verdict st in_band =
  st.ring.(st.ring_pos) <- in_band;
  st.ring_pos <- (st.ring_pos + 1) mod Array.length st.ring;
  if st.ring_len < Array.length st.ring then st.ring_len <- st.ring_len + 1;
  let inband = ref 0 in
  for i = 0 to st.ring_len - 1 do
    if st.ring.(i) then incr inband
  done;
  let ratio = float_of_int !inband /. float_of_int st.ring_len in
  Metrics.set inband_gauge ratio;
  let was_firing = st.alarm in
  st.alarm <- ratio < st.drift_min_ratio;
  Metrics.set drift_alarm_gauge (if st.alarm then 1.0 else 0.0);
  (* hexlens live gauges: the drift monitor is the online alert source *)
  Alert.live ~was_firing ~firing:st.alarm ()

let audit_ledger_record st (q : audit_task) (au : Advisor.audit) =
  match st.ledger_path with
  | None -> ()
  | Some path ->
      let b01 b = if b then 1.0 else 0.0 in
      (* attr.*/pred.* make the record diffable offline by `hextime
         explain` (and cross-checkable against a recomputation); an
         attribution failure degrades to a record without them *)
      let attr =
        let params = Microbench.params q.q_arch in
        let citer = Microbench.citer q.q_arch q.q_problem.Problem.stencil in
        match
          Model.attribution params ~citer q.q_problem
            q.q_entry.Index.e_config
        with
        | Ok (pr, comps) -> Explain.attribution_metrics pr comps
        | Error _ -> []
      in
      let entry =
        Ledger.make ~kind:"audit" ~code_version:Advisor.code_version
          ~labels:
            [
              ("req_id", q.q_req_id);
              ("arch", q.q_entry.Index.e_arch);
              ("stencil", q.q_entry.Index.e_stencil);
              ("space",
               String.concat "x"
                 (Array.to_list
                    (Array.map string_of_int q.q_problem.Problem.space)));
              ("time", string_of_int q.q_problem.Problem.time);
              ("key", q.q_entry.Index.e_key);
              ("source", Proto.source_to_string q.q_source);
              ("config", Hextime_tiling.Config.id q.q_entry.Index.e_config);
            ]
          ~metrics:
            ([
               ("exact_talg", au.Advisor.au_exact_talg);
               ("config_talg", au.Advisor.au_config_talg);
               ("served_talg", au.Advisor.au_served_talg);
               ("rel_err", au.Advisor.au_rel_err);
               ("in_band", b01 au.Advisor.au_in_band);
               ("argmin_match", b01 au.Advisor.au_argmin_match);
               ("feasible", float_of_int au.Advisor.au_feasible);
             ]
            @ attr)
          ()
      in
      (match Ledger.append ~path entry with
      | Ok () -> ()
      | Error msg -> Format.eprintf "hexserve: audit ledger: %s@." msg)

(* Re-verify a batch of served answers off the request path.  The audits
   run through the pool but uncached: the whole point is to re-derive the
   exhaustive arg-min with the *current* model every time, so a result
   memoised before the drift happened must not mask it. *)
let run_audits st (queue : audit_task list) =
  match queue with
  | [] -> ()
  | queue ->
      let exec = { st.exec with Parsweep.cache = None } in
      let outcomes, _stats =
        Parsweep.map ~label:"serve audit" exec
          ~key:(fun q -> "audit|" ^ q.q_req_id ^ "|" ^ q.q_entry.Index.e_key)
          ~f:(fun q ->
            Advisor.audit q.q_arch q.q_problem
              ~config:q.q_entry.Index.e_config ~talg:q.q_entry.Index.e_talg)
          queue
      in
      List.iter2
        (fun (q : audit_task) outcome ->
          st.audits <- st.audits + 1;
          Metrics.incr audits_counter;
          match outcome with
          | Ok (Ok au) ->
              if not au.Advisor.au_in_band then begin
                st.audits_oob <- st.audits_oob + 1;
                Metrics.incr oob_counter
              end;
              record_verdict st au.Advisor.au_in_band;
              audit_ledger_record st q au
          | Ok (Error _) | Error _ ->
              (* an audit that cannot even enumerate the space is itself
                 evidence of drift *)
              st.audits_oob <- st.audits_oob + 1;
              Metrics.incr oob_counter;
              record_verdict st false)
        queue outcomes

(* --- plain-HTTP /metrics --------------------------------------------------- *)

let http_content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

let http_respond fd ~status ~content_type body =
  let response =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n%s"
      status content_type (String.length body) body
  in
  let payload = Bytes.unsafe_of_string response in
  let len = Bytes.length payload in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write fd payload !off (len - !off)
    done
  with Unix.Unix_error _ -> ()

(* One scrape, served synchronously: read one request buffer (a scraper
   sends its whole GET in one segment; a byte-dribbling client is cut off
   by the receive timeout), answer, close.  The serving loop stays
   single-threaded — a scrape costs one snapshot render. *)
let serve_http_client st fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let buf = Bytes.create 4096 in
  let n = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
  let request = Bytes.sub_string buf 0 n in
  let first_line =
    match String.index_opt request '\r' with
    | Some i -> String.sub request 0 i
    | None -> (
        match String.index_opt request '\n' with
        | Some i -> String.sub request 0 i
        | None -> request)
  in
  (match String.split_on_char ' ' first_line with
  | "GET" :: "/metrics" :: _ ->
      st.scrapes <- st.scrapes + 1;
      Metrics.incr scrape_counter;
      let body =
        Openmetrics.render (refreshed_snapshot st ~now:(Unix.gettimeofday ()))
      in
      http_respond fd ~status:"200 OK" ~content_type:http_content_type body
  | "GET" :: _ :: _ ->
      http_respond fd ~status:"404 Not Found" ~content_type:"text/plain"
        "only /metrics lives here\n"
  | _ ->
      http_respond fd ~status:"400 Bad Request" ~content_type:"text/plain"
        "bad request\n");
  try Unix.close fd with Unix.Unix_error _ -> ()

let stats_json st ~now = Metrics.to_json (refreshed_snapshot st ~now)

let run ?index_path ?(exec = Parsweep.serial) ?max_requests
    ?(on_ready = fun () -> ()) ?http_port ?on_http_port ?access_log_path
    ?(slow_us = infinity) ?slo ?(audit_rate = 0) ?(audit_cold = false)
    ?(drift_min_ratio = 0.99) ?ledger_path ~socket_path () =
  let t_start = Unix.gettimeofday () in
  let index =
    match index_path with
    | None -> Index.create ()
    | Some path ->
        if Sys.file_exists path then
          match Index.load ~path with
          | Ok idx -> idx
          | Error msg ->
              Format.eprintf
                "hexserve: %s — starting with an empty index@." msg;
              Index.create ()
        else Index.create ()
  in
  warm_memos index;
  let alog =
    match access_log_path with
    | None -> None
    | Some path -> (
        match Access_log.open_ ~path with
        | Ok log -> Some log
        | Error msg ->
            Format.eprintf "hexserve: access log: %s@." msg;
            None)
  in
  let st =
    {
      index;
      index_path;
      exec;
      t_start;
      slo = Slo.create ?spec:slo ~now:t_start ();
      alog;
      slow_us;
      audit_rate;
      audit_cold;
      drift_min_ratio;
      ledger_path;
      dirty = false;
      requests = 0;
      warm_hits = 0;
      cold_misses = 0;
      errors = 0;
      in_flight = 0;
      next_req = 0;
      audits = 0;
      audits_oob = 0;
      alarm = false;
      scrapes = 0;
      ring = Array.make drift_window true;
      ring_len = 0;
      ring_pos = 0;
    }
  in
  (* a clean start scrapes as alarm 0, not as an absent family *)
  Metrics.set drift_alarm_gauge 0.0;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 64;
  let http_listener =
    match http_port with
    | None -> None
    | Some port ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen sock 16;
        let actual =
          match Unix.getsockname sock with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (match on_http_port with Some f -> f actual | None -> ());
        Some sock
  in
  let clients = ref [] in
  let close_client fd =
    clients := List.filter (fun c -> c <> fd) !clients;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let running = ref true in
  (* Graceful shutdown: SIGINT/SIGTERM flip [running] and let the loop
     fall through to the normal cleanup path (persist the index, flush
     the access log, stamp a final ledger record, unlink the socket).
     The 1s select timeout bounds the latency even if the EINTR the
     signal causes is swallowed.  Handlers are restored on exit so
     embedding callers (tests, the bench) keep their own disposition;
     they are installed before [on_ready] so a caller who signals as soon
     as the socket is up cannot hit the default disposition. *)
  let stop_signal = ref None in
  let install s =
    match
      Sys.signal s
        (Sys.Signal_handle
           (fun _ ->
             stop_signal := Some s;
             running := false))
    with
    | prev -> Some (s, prev)
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let saved_handlers =
    List.filter_map install [ Sys.sigint; Sys.sigterm ]
  in
  on_ready ();
  let budget_left () =
    match max_requests with None -> true | Some n -> st.requests < n
  in
  (* Counts every answered ask since the monitor started; audit_rate
     samples it so "every Nth served answer" is global, not per-client. *)
  let audit_clock = ref 0 in
  while !running && budget_left () do
    let watched =
      (listener :: Option.to_list http_listener) @ !clients
    in
    (* a finite timeout lets SLO windows close during idle periods *)
    match Unix.select watched [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        let now = Unix.gettimeofday () in
        Slo.tick st.slo ~now;
        Option.iter (fun a -> Access_log.maybe_flush a ~now) st.alog;
        let cold_queue = ref [] in
        let audit_queue = ref [] in
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | client, _ -> clients := client :: !clients
              | exception Unix.Unix_error _ -> ()
            end
            else if Some fd = http_listener then begin
              match Unix.accept fd with
              | client, _ -> serve_http_client st client
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Proto.read_frame fd with
              | Ok None -> close_client fd
              | Error msg ->
                  answer_error st fd msg;
                  close_client fd
              | Ok (Some json) -> (
                  let t0 = Unix.gettimeofday () in
                  match Proto.request_of_json json with
                  | Error msg ->
                      st.requests <- st.requests + 1;
                      Metrics.incr requests_counter;
                      answer_error st ~req_id:(fresh_req_id st) ~t0 fd msg
                  | Ok Proto.Stats ->
                      send_reply fd
                        (Proto.Stats_reply
                           {
                             metrics = stats_json st ~now:t0;
                             server = vitals st ~now:t0;
                           })
                  | Ok Proto.Metrics ->
                      send_reply fd
                        (Proto.Metrics_reply
                           (Openmetrics.render
                              (refreshed_snapshot st ~now:t0)))
                  | Ok Proto.Shutdown ->
                      send_reply fd
                        (Proto.Stats_reply
                           {
                             metrics = stats_json st ~now:t0;
                             server = vitals st ~now:t0;
                           });
                      running := false
                  | Ok (Proto.Ask { arch; stencil; space; time }) -> (
                      let req_id = fresh_req_id st in
                      match resolve arch stencil space time with
                      | Error msg ->
                          st.requests <- st.requests + 1;
                          Metrics.incr requests_counter;
                          answer_error st ~req_id ~t0 fd msg
                      | Ok (arch, problem) -> (
                          st.in_flight <- st.in_flight + 1;
                          let key = Advisor.request_key arch problem in
                          match Index.find st.index key with
                          | Some entry ->
                              st.requests <- st.requests + 1;
                              Metrics.incr requests_counter;
                              st.in_flight <- st.in_flight - 1;
                              answer_entry st fd ~req_id ~source:Proto.Warm
                                ~entry ~t0;
                              incr audit_clock;
                              if
                                st.audit_rate > 0
                                && !audit_clock mod st.audit_rate = 0
                              then
                                audit_queue :=
                                  {
                                    q_req_id = req_id;
                                    q_arch = arch;
                                    q_problem = problem;
                                    q_entry = entry;
                                    q_source = Proto.Warm;
                                  }
                                  :: !audit_queue
                          | None ->
                              cold_queue :=
                                {
                                  p_fd = fd;
                                  p_req_id = req_id;
                                  p_arch = arch;
                                  p_problem = problem;
                                  p_key = key;
                                  p_t0 = t0;
                                }
                                :: !cold_queue))))
          readable;
        let cold_audits =
          match List.rev !cold_queue with
          | [] -> []
          | pending -> solve_batch st pending
        in
        (* replies are out the door; drift verification is pure overhead
           the clients never wait for *)
        run_audits st (List.rev !audit_queue @ cold_audits)
  done;
  List.iter
    (fun (s, prev) ->
      try Sys.set_signal s prev with Invalid_argument _ | Sys_error _ -> ())
    saved_handlers;
  persist st;
  Option.iter
    (fun a -> Access_log.maybe_flush a ~now:(Unix.gettimeofday ()))
    st.alog;
  (* On a signal-driven exit, leave a provenance-stamped last word in the
     ledger: final vitals plus the full metrics snapshot, so a scraper
     that missed the process's end can still reconstruct it. *)
  (match (!stop_signal, st.ledger_path) with
  | Some s, Some path ->
      let now = Unix.gettimeofday () in
      let name =
        if s = Sys.sigint then "sigint"
        else if s = Sys.sigterm then "sigterm"
        else string_of_int s
      in
      let b01 b = if b then 1.0 else 0.0 in
      let entry =
        Ledger.make ~kind:"serve" ~code_version:Advisor.code_version
          ~labels:[ ("shutdown", name) ]
          ~metrics:
            [
              ("requests", float_of_int st.requests);
              ("warm_hits", float_of_int st.warm_hits);
              ("cold_misses", float_of_int st.cold_misses);
              ("errors", float_of_int st.errors);
              ("audits", float_of_int st.audits);
              ("audits_out_of_band", float_of_int st.audits_oob);
              ("drift_alarm", b01 st.alarm);
              ("uptime_s", now -. st.t_start);
            ]
          ~snapshot:(stats_json st ~now) ()
      in
      (match Ledger.append ~path entry with
      | Ok () -> ()
      | Error msg -> Format.eprintf "hexserve: shutdown ledger: %s@." msg)
  | _ -> ());
  Option.iter Access_log.close st.alog;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  Option.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    http_listener;
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  {
    requests = st.requests;
    warm_hits = st.warm_hits;
    cold_misses = st.cold_misses;
    errors = st.errors;
    audits = st.audits;
    audits_out_of_band = st.audits_oob;
    drift_alarm = st.alarm;
    scrapes = st.scrapes;
  }
