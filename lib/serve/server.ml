module Arch = Hextime_gpu.Arch
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Parsweep = Hextime_parsweep.Parsweep
module Metrics = Hextime_obs.Metrics

(* Serving telemetry.  The latency histograms power the p50/p90/p99
   estimates Metrics.quantile exposes in snapshots — the bench additionally
   measures warm latency exactly, client-side. *)
let requests_counter = Metrics.counter "serve.requests"
let warm_counter = Metrics.counter "serve.warm_hits"
let cold_counter = Metrics.counter "serve.cold_misses"
let error_counter = Metrics.counter "serve.errors"
let warm_hist = Metrics.histogram "serve.warm_seconds"
let cold_hist = Metrics.histogram "serve.cold_seconds"

type summary = {
  requests : int;  (** ask requests answered (warm + cold + rejected) *)
  warm_hits : int;
  cold_misses : int;
  errors : int;
}

type state = {
  index : Index.t;
  index_path : string option;
  exec : Parsweep.exec;
  mutable dirty : bool;
  mutable requests : int;
  mutable warm_hits : int;
  mutable cold_misses : int;
  mutable errors : int;
}

(* Resolve the textual request against the preset tables.  This is also
   where the (memoized) micro-benchmarks for an unseen architecture are
   forced, via Advisor.request_key. *)
let resolve (arch_name : string) (stencil_name : string) space time =
  match Arch.find arch_name with
  | exception Not_found ->
      Error (Printf.sprintf "unknown architecture %S" arch_name)
  | arch -> (
      match Stencil.find stencil_name with
      | exception Not_found ->
          Error (Printf.sprintf "unknown stencil %S" stencil_name)
      | stencil -> (
          match Problem.make stencil ~space ~time with
          | exception Invalid_argument msg -> Error msg
          | problem -> Ok (arch, problem)))

(* Warm every (architecture, stencil) micro-benchmark memo the index
   mentions before accepting connections, so the first live request for an
   indexed context pays one hash lookup and not a micro-benchmark
   campaign.  Computing the request digest forces exactly the memos a
   lookup needs (Microbench.params and citer). *)
let warm_memos index =
  List.iter
    (fun (e : Index.entry) ->
      match
        resolve e.Index.e_arch e.Index.e_stencil e.Index.e_space e.Index.e_time
      with
      | Error _ -> ()
      | Ok (arch, problem) -> ignore (Advisor.request_key arch problem : string))
    (Index.entries index)

let persist st =
  match st.index_path with
  | Some path when st.dirty -> (
      match Index.save st.index ~path with
      | Ok () -> st.dirty <- false
      | Error msg -> Format.eprintf "hexserve: index save: %s@." msg)
  | _ -> ()

(* One queued cold request: who asked, for what, and when it arrived. *)
type pending = {
  p_fd : Unix.file_descr;
  p_arch : Arch.t;
  p_problem : Problem.t;
  p_key : string;
  p_t0 : float;
}

let send_reply fd reply =
  try Proto.write_frame fd (Proto.reply_to_json reply)
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let answer_error st fd msg =
  st.errors <- st.errors + 1;
  Metrics.incr error_counter;
  send_reply fd (Proto.Error_reply msg)

(* Solve every queued cold miss as one batch through the Parsweep pool:
   concurrent misses from independent clients amortize pool startup and
   land in the disk cache under their request digests, then write back
   into the in-memory index (and its on-disk snapshot) so the next ask is
   warm. *)
let solve_batch st (pending : pending list) =
  let tasks =
    List.fold_left
      (fun acc p -> if List.mem_assoc p.p_key acc then acc else (p.p_key, p) :: acc)
      [] pending
    |> List.rev_map snd
  in
  let outcomes, _stats =
    Parsweep.map ~label:"serve cold batch" st.exec
      ~key:(fun p -> p.p_key)
      ~f:(fun p -> Advisor.solve p.p_arch p.p_problem)
      tasks
  in
  let solved = Hashtbl.create (List.length tasks) in
  List.iter2
    (fun (p : pending) outcome ->
      match outcome with
      | Ok (Ok answer) ->
          let entry = Index.entry_of_answer p.p_arch p.p_problem answer in
          Index.add st.index entry;
          st.dirty <- true;
          Hashtbl.replace solved p.p_key (Ok entry)
      | Ok (Error msg) | Error msg -> Hashtbl.replace solved p.p_key (Error msg))
    tasks outcomes;
  persist st;
  List.iter
    (fun (p : pending) ->
      st.requests <- st.requests + 1;
      Metrics.incr requests_counter;
      match Hashtbl.find_opt solved p.p_key with
      | Some (Ok entry) ->
          st.cold_misses <- st.cold_misses + 1;
          Metrics.incr cold_counter;
          let dt = Unix.gettimeofday () -. p.p_t0 in
          Metrics.observe cold_hist dt;
          send_reply p.p_fd
            (Proto.Answer
               { source = Proto.Cold; entry; latency_us = dt *. 1e6 })
      | Some (Error msg) -> answer_error st p.p_fd ("advisor: " ^ msg)
      | None -> answer_error st p.p_fd "advisor: batch lost the request")
    pending

let stats_json () = Metrics.to_json (Metrics.snapshot ())

let run ?index_path ?(exec = Parsweep.serial) ?max_requests
    ?(on_ready = fun () -> ()) ~socket_path () =
  let index =
    match index_path with
    | None -> Index.create ()
    | Some path ->
        if Sys.file_exists path then
          match Index.load ~path with
          | Ok idx -> idx
          | Error msg ->
              Format.eprintf
                "hexserve: %s — starting with an empty index@." msg;
              Index.create ()
        else Index.create ()
  in
  warm_memos index;
  let st =
    {
      index;
      index_path;
      exec;
      dirty = false;
      requests = 0;
      warm_hits = 0;
      cold_misses = 0;
      errors = 0;
    }
  in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 64;
  on_ready ();
  let clients = ref [] in
  let close_client fd =
    clients := List.filter (fun c -> c <> fd) !clients;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let running = ref true in
  let budget_left () =
    match max_requests with None -> true | Some n -> st.requests < n
  in
  while !running && budget_left () do
    match Unix.select (listener :: !clients) [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        let cold_queue = ref [] in
        List.iter
          (fun fd ->
            if fd = listener then begin
              match Unix.accept listener with
              | client, _ -> clients := client :: !clients
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Proto.read_frame fd with
              | Ok None -> close_client fd
              | Error msg ->
                  answer_error st fd msg;
                  close_client fd
              | Ok (Some json) -> (
                  let t0 = Unix.gettimeofday () in
                  match Proto.request_of_json json with
                  | Error msg ->
                      st.requests <- st.requests + 1;
                      Metrics.incr requests_counter;
                      answer_error st fd msg
                  | Ok Proto.Stats ->
                      send_reply fd (Proto.Stats_reply (stats_json ()))
                  | Ok Proto.Shutdown ->
                      send_reply fd (Proto.Stats_reply (stats_json ()));
                      running := false
                  | Ok (Proto.Ask { arch; stencil; space; time }) -> (
                      match resolve arch stencil space time with
                      | Error msg ->
                          st.requests <- st.requests + 1;
                          Metrics.incr requests_counter;
                          answer_error st fd msg
                      | Ok (arch, problem) -> (
                          let key = Advisor.request_key arch problem in
                          match Index.find st.index key with
                          | Some entry ->
                              st.requests <- st.requests + 1;
                              Metrics.incr requests_counter;
                              st.warm_hits <- st.warm_hits + 1;
                              Metrics.incr warm_counter;
                              let dt = Unix.gettimeofday () -. t0 in
                              Metrics.observe warm_hist dt;
                              send_reply fd
                                (Proto.Answer
                                   {
                                     source = Proto.Warm;
                                     entry;
                                     latency_us = dt *. 1e6;
                                   })
                          | None ->
                              cold_queue :=
                                {
                                  p_fd = fd;
                                  p_arch = arch;
                                  p_problem = problem;
                                  p_key = key;
                                  p_t0 = t0;
                                }
                                :: !cold_queue))))
          readable;
        (match List.rev !cold_queue with
        | [] -> ()
        | pending -> solve_batch st pending)
  done;
  persist st;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  {
    requests = st.requests;
    warm_hits = st.warm_hits;
    cold_misses = st.cold_misses;
    errors = st.errors;
  }
