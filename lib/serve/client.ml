let connect ?(attempts = 1) ?(delay_s = 0.05) ~socket_path () =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | () -> Ok fd
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n > 1 then begin
          (* the server may still be binding its socket: back off and retry *)
          ignore (Unix.select [] [] [] delay_s);
          go (n - 1)
        end
        else
          Error
            (Printf.sprintf "connect %s: %s" socket_path
               (Unix.error_message err))
  in
  go (max 1 attempts)

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rpc fd request =
  match Proto.write_frame fd (Proto.request_to_json request) with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "send: %s" (Unix.error_message err))
  | () -> (
      match Proto.read_frame fd with
      | Ok (Some json) -> Proto.reply_of_json json
      | Ok None -> Error "server closed the connection"
      | Error e -> Error e)

let ask fd ~arch ~stencil ~space ~time =
  match rpc fd (Proto.Ask { arch; stencil; space; time }) with
  | Ok (Proto.Answer answer) -> Ok answer
  | Ok (Proto.Error_reply msg) -> Error msg
  | Ok (Proto.Stats_reply _ | Proto.Metrics_reply _) ->
      Error "unexpected reply to ask"
  | Error e -> Error e

let stats fd =
  match rpc fd Proto.Stats with
  | Ok (Proto.Stats_reply { metrics; server }) -> Ok (metrics, server)
  | Ok (Proto.Error_reply msg) -> Error msg
  | Ok (Proto.Answer _ | Proto.Metrics_reply _) ->
      Error "unexpected reply to stats"
  | Error e -> Error e

let metrics fd =
  match rpc fd Proto.Metrics with
  | Ok (Proto.Metrics_reply text) -> Ok text
  | Ok (Proto.Error_reply msg) -> Error msg
  | Ok (Proto.Answer _ | Proto.Stats_reply _) ->
      Error "unexpected reply to metrics"
  | Error e -> Error e

let shutdown fd =
  match rpc fd Proto.Shutdown with
  | Ok (Proto.Stats_reply _) -> Ok ()
  | Ok (Proto.Error_reply msg) -> Error msg
  | Ok (Proto.Answer _ | Proto.Metrics_reply _) ->
      Error "unexpected reply to shutdown"
  | Error e -> Error e
