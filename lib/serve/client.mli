(** Client side of the hexserve protocol: one blocking round-trip per
    call over a connected Unix-domain socket.  Connections are cheap and
    reusable — [hextime ask] opens one, the bench holds one open across
    thousands of warm queries. *)

val connect :
  ?attempts:int ->
  ?delay_s:float ->
  socket_path:string ->
  unit ->
  (Unix.file_descr, string) result
(** Connect to a serving socket.  With [attempts > 1], retries every
    [delay_s] seconds (default 50ms) — for racing a server that is still
    starting up. *)

val close : Unix.file_descr -> unit

val ask :
  Unix.file_descr ->
  arch:string ->
  stencil:string ->
  space:int array ->
  time:int ->
  (Proto.answer, string) result
(** One advisory query.  The answer carries the provenance
    ([Warm]/[Cold]), the index entry (recommended config, predicted Talg,
    attribution), the server-side latency in microseconds, the server's
    request id and the server vitals ([uptime_s], [index_entries],
    [requests_in_flight]). *)

val stats :
  Unix.file_descr ->
  (Hextime_prelude.Minijson.t * (string * float) list, string) result
(** The server's metrics snapshot (counters and latency histograms with
    p50/p90/p99) plus the server vitals assoc. *)

val metrics : Unix.file_descr -> (string, string) result
(** The OpenMetrics text exposition — byte-identical to what the
    plain-HTTP [GET /metrics] endpoint serves. *)

val shutdown : Unix.file_descr -> (unit, string) result
(** Ask the server to exit after replying. *)
