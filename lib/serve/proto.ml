module Minijson = Hextime_prelude.Minijson

(* A frame is a 4-byte big-endian payload length followed by that many
   bytes of compact JSON.  Length-prefixing keeps the protocol trivially
   incremental — the server never has to find a message boundary inside a
   byte stream — and the cap below bounds what a confused or hostile
   client can make the server allocate. *)
let max_frame = 1 lsl 20

let write_frame fd json =
  let payload = Bytes.unsafe_of_string (Minijson.render_compact json) in
  let n = Bytes.length payload in
  if n > max_frame then invalid_arg "Proto.write_frame: frame too large";
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 header 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 header 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 header 3 (n land 0xff);
  let write_all b =
    let len = Bytes.length b in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write fd b !off (len - !off)
    done
  in
  write_all header;
  write_all payload

(* [Ok None] is a clean end-of-stream (the client closed between frames);
   anything malformed — short header, oversized length, truncated payload,
   unparseable JSON — is an [Error]. *)
let read_frame fd =
  let read_exactly n =
    let b = Bytes.create n in
    let off = ref 0 in
    let eof = ref false in
    while (not !eof) && !off < n do
      match Unix.read fd b !off (n - !off) with
      | 0 -> eof := true
      | k -> off := !off + k
    done;
    if !eof then None else Some b
  in
  match read_exactly 4 with
  | None -> Ok None
  | Some header -> (
      let n =
        (Bytes.get_uint8 header 0 lsl 24)
        lor (Bytes.get_uint8 header 1 lsl 16)
        lor (Bytes.get_uint8 header 2 lsl 8)
        lor Bytes.get_uint8 header 3
      in
      if n > max_frame then
        Error (Printf.sprintf "frame length %d exceeds limit %d" n max_frame)
      else
        match read_exactly n with
        | None -> Error "truncated frame"
        | Some payload -> (
            match Minijson.parse (Bytes.unsafe_to_string payload) with
            | Error e -> Error (Printf.sprintf "bad frame payload: %s" e)
            | Ok json -> Ok (Some json)))

(* --- requests -------------------------------------------------------------- *)

type request =
  | Ask of { arch : string; stencil : string; space : int array; time : int }
  | Stats
  | Metrics
  | Shutdown

let ints_to_json xs =
  Minijson.List
    (List.map (fun i -> Minijson.Num (float_of_int i)) (Array.to_list xs))

let request_to_json = function
  | Ask { arch; stencil; space; time } ->
      Minijson.Obj
        [
          ("op", Minijson.Str "ask");
          ("arch", Minijson.Str arch);
          ("stencil", Minijson.Str stencil);
          ("space", ints_to_json space);
          ("time", Minijson.Num (float_of_int time));
        ]
  | Stats -> Minijson.Obj [ ("op", Minijson.Str "stats") ]
  | Metrics -> Minijson.Obj [ ("op", Minijson.Str "metrics") ]
  | Shutdown -> Minijson.Obj [ ("op", Minijson.Str "shutdown") ]

let str name j = Option.bind (Minijson.member name j) Minijson.string

let ints name j =
  match Minijson.member name j with
  | Some (Minijson.List xs) ->
      let vals = List.filter_map Minijson.number xs in
      if List.length vals = List.length xs then
        Some (Array.of_list (List.map int_of_float vals))
      else None
  | _ -> None

let request_of_json j =
  match str "op" j with
  | Some "ask" -> (
      match
        ( str "arch" j,
          str "stencil" j,
          ints "space" j,
          Option.bind (Minijson.member "time" j) Minijson.number )
      with
      | Some arch, Some stencil, Some space, Some time ->
          Ok (Ask { arch; stencil; space; time = int_of_float time })
      | _ -> Error "ask: requires arch, stencil, space, time")
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request has no op field"

(* --- replies --------------------------------------------------------------- *)

type source = Warm | Cold

let source_to_string = function Warm -> "warm" | Cold -> "cold"

let source_of_string = function
  | "warm" -> Some Warm
  | "cold" -> Some Cold
  | _ -> None

type answer = {
  source : source;
  entry : Index.entry;
  latency_us : float;
  req_id : string;
  server : (string * float) list;
}

type reply =
  | Answer of answer
  | Stats_reply of { metrics : Minijson.t; server : (string * float) list }
  | Metrics_reply of string
  | Error_reply of string

let server_to_json = function
  | [] -> []
  | kvs ->
      [
        ( "server",
          Minijson.Obj (List.map (fun (k, v) -> (k, Minijson.Num v)) kvs) );
      ]

let server_of_json j =
  match Minijson.member "server" j with
  | Some (Minijson.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match Minijson.number v with Some f -> Some (k, f) | None -> None)
        fields
  | _ -> []

let reply_to_json = function
  | Answer { source; entry; latency_us; req_id; server } ->
      let fields =
        match Index.entry_to_json entry with
        | Minijson.Obj fs -> fs
        | _ -> []
      in
      Minijson.Obj
        (("status", Minijson.Str "ok")
        :: ("source", Minijson.Str (source_to_string source))
        :: ("latency_us", Minijson.Num latency_us)
        :: ((if req_id = "" then []
             else [ ("req_id", Minijson.Str req_id) ])
           @ fields @ server_to_json server))
  | Stats_reply { metrics; server } ->
      Minijson.Obj
        (("status", Minijson.Str "ok")
        :: ("metrics", metrics)
        :: server_to_json server)
  | Metrics_reply text ->
      Minijson.Obj
        [ ("status", Minijson.Str "ok"); ("exposition", Minijson.Str text) ]
  | Error_reply msg ->
      Minijson.Obj
        [ ("status", Minijson.Str "error"); ("message", Minijson.Str msg) ]

let reply_of_json j =
  match str "status" j with
  | Some "error" ->
      Ok
        (Error_reply
           (Option.value ~default:"unknown error" (str "message" j)))
  | Some "ok" -> (
      match (str "exposition" j, Minijson.member "metrics" j) with
      | Some text, _ -> Ok (Metrics_reply text)
      | None, Some metrics ->
          Ok (Stats_reply { metrics; server = server_of_json j })
      | None, None -> (
          match
            ( Option.bind (str "source" j) source_of_string,
              Index.entry_of_json j,
              Option.bind (Minijson.member "latency_us" j) Minijson.number )
          with
          | Some source, Ok entry, Some latency_us ->
              Ok
                (Answer
                   {
                     source;
                     entry;
                     latency_us;
                     req_id = Option.value ~default:"" (str "req_id" j);
                     server = server_of_json j;
                   })
          | _, Error e, _ -> Error e
          | _ -> Error "answer: missing source or latency_us"))
  | Some s -> Error (Printf.sprintf "unknown status %S" s)
  | None -> Error "reply has no status field"
