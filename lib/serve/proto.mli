(** The hexserve wire protocol: length-prefixed compact JSON frames over a
    Unix-domain stream socket.

    Each frame is a 4-byte big-endian payload length followed by one
    compact {!Hextime_prelude.Minijson} document; frames at most
    {!max_frame} bytes.  Requests are [ask] (one advisory query), [stats]
    (the server's metrics snapshot plus server vitals), [metrics] (the
    OpenMetrics text exposition, the same payload `GET /metrics` serves)
    and [shutdown]; replies carry a [status] field plus either the answer
    entry (with its [warm]/[cold] provenance, request id and server-side
    latency) or an error message.  See [docs/SERVING.md] for the JSON
    schemas. *)

val max_frame : int

val write_frame : Unix.file_descr -> Hextime_prelude.Minijson.t -> unit
(** Blocking write of one frame.  Raises [Unix.Unix_error] on a broken
    connection and [Invalid_argument] past {!max_frame}. *)

val read_frame :
  Unix.file_descr -> (Hextime_prelude.Minijson.t option, string) result
(** Blocking read of one frame.  [Ok None] is a clean end-of-stream
    between frames; truncation, an oversized length prefix or unparseable
    payload is [Error]. *)

(** {1 Requests} *)

type request =
  | Ask of { arch : string; stencil : string; space : int array; time : int }
  | Stats
  | Metrics
  | Shutdown

val request_to_json : request -> Hextime_prelude.Minijson.t
val request_of_json : Hextime_prelude.Minijson.t -> (request, string) result

(** {1 Replies} *)

type source = Warm | Cold

val source_to_string : source -> string
val source_of_string : string -> source option

type answer = {
  source : source;
  entry : Index.entry;
  latency_us : float;
  req_id : string;  (** server-assigned request id; [""] when unknown *)
  server : (string * float) list;
      (** server vitals riding along with every answer and stats reply:
          [uptime_s], [index_entries], [requests_in_flight] *)
}

type reply =
  | Answer of answer
  | Stats_reply of { metrics : Hextime_prelude.Minijson.t;
                     server : (string * float) list }
  | Metrics_reply of string  (** OpenMetrics text exposition *)
  | Error_reply of string

val reply_to_json : reply -> Hextime_prelude.Minijson.t
val reply_of_json : Hextime_prelude.Minijson.t -> (reply, string) result
