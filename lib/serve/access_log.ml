module Minijson = Hextime_prelude.Minijson
module Metrics = Hextime_obs.Metrics

(* Structured JSONL access log: one compact record per answered request.
   Records are buffered (a line is a single [output_string], so records
   never tear) and flushed on a cadence by the serving loop — a per-line
   [flush] costs a write syscall per request, which an A/B bench put at
   ~10% of the whole warm round-trip.  Slow cold solves additionally
   carry the answer's Section-5 cost attribution, so "why was this
   request slow" is answerable from the log alone. *)

let lines_counter = Metrics.counter "serve.access_log_lines"

type t = {
  oc : out_channel;
  path : string;
  buf : Buffer.t;  (** reused per record; a log call must not allocate one *)
  mutable lines : int;
  mutable last_flush : float;
}

let flush_interval_s = 1.0

let open_ ~path =
  match open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path with
  | exception Sys_error msg -> Error msg
  | oc ->
      Ok
        {
          oc;
          path;
          buf = Buffer.create 256;
          lines = 0;
          last_flush = Unix.gettimeofday ();
        }

let path t = t.path
let lines t = t.lines

let close t =
  (try flush t.oc with Sys_error _ -> ());
  close_out_noerr t.oc

let maybe_flush t ~now =
  if now -. t.last_flush >= flush_interval_s then begin
    t.last_flush <- now;
    try flush t.oc with Sys_error _ -> ()
  end

(* The record is streamed straight into the reused buffer — no Minijson
   tree, no [render_compact] (the A/B bench put the tree + render at ~3 us
   per record, most of the log's warm-path cost; this path is ~1 us).
   Strings take a scan-first fast path: request digests, sources and
   config ids never need escaping, so the common case is one bulk
   [Buffer.add_string]; anything else falls back to Minijson's escaper.
   Times are rendered at fixed precision by integer math rather than
   %.17g via sprintf: microseconds on the unix timestamp and on the
   latency are exact enough for a log. *)
let add_str t s =
  Buffer.add_char t.buf '"';
  let n = String.length s in
  let rec clean i =
    i >= n
    ||
    let c = String.unsafe_get s i in
    c <> '"' && c <> '\\' && Char.code c >= 0x20 && clean (i + 1)
  in
  if clean 0 then Buffer.add_string t.buf s else Minijson.add_escaped t.buf s;
  Buffer.add_char t.buf '"'

(* Fixed 6-decimal rendering: [f] is a unix timestamp or a latency in us,
   both far inside the range where [f *. 1e6] is exact to the digit. *)
let add_time t f =
  if not (Float.is_finite f) then
    Buffer.add_string t.buf (Minijson.render_number f)
  else begin
    let scaled = Int64.of_float (Float.round (f *. 1e6)) in
    let sec = Int64.div scaled 1_000_000L in
    let frac = Int64.to_int (Int64.rem scaled 1_000_000L) in
    let sec, frac =
      if frac < 0 then (Int64.sub sec 1L, frac + 1_000_000) else (sec, frac)
    in
    Buffer.add_string t.buf (Int64.to_string sec);
    Buffer.add_char t.buf '.';
    Buffer.add_string t.buf (Printf.sprintf "%06d" frac)
  end

let log t ~ts ~req_id ~key ~source ~latency_us ?digest ?error ?attribution ()
    =
  Buffer.clear t.buf;
  Buffer.add_string t.buf "{\"ts\":";
  add_time t ts;
  Buffer.add_string t.buf ",\"req_id\":";
  add_str t req_id;
  Buffer.add_string t.buf ",\"key\":";
  add_str t key;
  Buffer.add_string t.buf ",\"source\":";
  add_str t source;
  Buffer.add_string t.buf ",\"latency_us\":";
  add_time t latency_us;
  Option.iter
    (fun d ->
      Buffer.add_string t.buf ",\"digest\":";
      add_str t d)
    digest;
  Option.iter
    (fun e ->
      Buffer.add_string t.buf ",\"error\":";
      add_str t e)
    error;
  Option.iter
    (fun a ->
      Buffer.add_string t.buf ",\"slow\":true,\"attribution\":";
      Buffer.add_string t.buf (Minijson.render_compact a))
    attribution;
  Buffer.add_string t.buf "}\n";
  (* best-effort: a full disk must not take the serving loop down *)
  (try Buffer.output_buffer t.oc t.buf with Sys_error _ -> ());
  t.lines <- t.lines + 1;
  Metrics.incr lines_counter
