module Gpu = Hextime_gpu
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem

type scale = Ci | Quick | Paper

type t = { arch : Gpu.Arch.t; problem : Problem.t }

let scale_of_string = function
  | "ci" -> Ok Ci
  | "quick" -> Ok Quick
  | "paper" -> Ok Paper
  | s -> Error (Printf.sprintf "unknown scale %S (expected ci|quick|paper)" s)

let scale_to_string = function Ci -> "ci" | Quick -> "quick" | Paper -> "paper"

let sizes_2d = function
  | Ci -> [ ([| 512; 512 |], 128) ]
  | Quick ->
      [ ([| 4096; 4096 |], 1024); ([| 4096; 4096 |], 4096); ([| 8192; 8192 |], 8192) ]
  | Paper -> Problem.paper_sizes_2d

let sizes_3d = function
  | Ci -> [ ([| 96; 96; 96 |], 32) ]
  | Quick -> [ ([| 384; 384; 384 |], 128); ([| 512; 512; 512 |], 256) ]
  | Paper -> Problem.paper_sizes_3d

let cross stencils sizes =
  List.concat_map
    (fun arch ->
      List.concat_map
        (fun stencil ->
          List.map
            (fun (space, time) ->
              { arch; problem = Problem.make stencil ~space ~time })
            sizes)
        stencils)
    Gpu.Arch.presets

let all_2d scale = cross Stencil.benchmarks_2d (sizes_2d scale)
let all_3d scale = cross Stencil.benchmarks_3d (sizes_3d scale)
let all scale = all_2d scale @ all_3d scale

let id e = Printf.sprintf "%s/%s" e.arch.Gpu.Arch.name (Problem.id e.problem)
