(** Model validation analysis (Section 5.3 and Figure 3).

    The paper's headline numbers: RMSE of 45-200% over a whole sweep, but
    below 10% when restricted to the data points whose measured throughput
    is within 20% of the best.  [analyze] computes both, plus the
    predicted/measured correlation of the top band. *)

type summary = {
  points : int;
  rmse_all : float;  (** relative RMSE over every data point *)
  top_points : int;
  rmse_top : float;  (** relative RMSE over the top-performing band *)
  correlation_top : float;  (** Pearson r of (predicted, measured), top band *)
  best_gflops : float;
}

val analyze : ?top_within:float -> Sweep.point list -> summary
(** [top_within] defaults to 0.2 (the paper's 20% band).  Raises
    [Invalid_argument] on an empty sweep. *)

val scatter : Sweep.point list -> (float * float) list
(** (predicted, measured) execution-time pairs — Figure 3's coordinates. *)

val pp_summary : Format.formatter -> summary -> unit
