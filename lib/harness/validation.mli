(** Model validation analysis (Section 5.3 and Figure 3).

    The paper's headline numbers: RMSE of 45-200% over a whole sweep, but
    below 10% when restricted to the data points whose measured throughput
    is within 20% of the best.  [analyze] computes both, plus the
    predicted/measured correlation of the top band and the Section 6
    selection claim — whether the model's predicted arg-min actually lands
    in that top band. *)

type summary = {
  points : int;
  rmse_all : float;  (** relative RMSE over every data point *)
  top_points : int;
  rmse_top : float;  (** relative RMSE over the top-performing band *)
  correlation_top : float;  (** Pearson r of (predicted, measured), top band *)
  best_gflops : float;
  argmin_quality : float;
      (** measured throughput of the predicted-best configuration as a
          fraction of the sweep's best measured throughput (1.0 = the
          model picked the true winner) *)
  argmin_in_band : bool;
      (** [argmin_quality >= 1 - top_within]: the paper's claim that the
          predicted arg-min lies in the top-performing band *)
}

val analyze : ?top_within:float -> Sweep.point list -> summary
(** [top_within] defaults to 0.2 (the paper's 20% band).  Raises
    [Invalid_argument] on an empty sweep. *)

val argmin_point : Sweep.point list -> Sweep.point
(** The point with the smallest predicted T_alg (the model's selection);
    raises [Invalid_argument] on an empty sweep. *)

val metrics : summary -> (string * float) list
(** The summary as named scalars ([argmin_in_band] as 0/1) — the shape the
    hexwatch ledger, the accuracy baseline and [hextime history] share. *)

val scatter : Sweep.point list -> (float * float) list
(** (predicted, measured) execution-time pairs — Figure 3's coordinates. *)

val pp_summary : Format.formatter -> summary -> unit
