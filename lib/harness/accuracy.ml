module Minijson = Hextime_prelude.Minijson
module Tabulate = Hextime_prelude.Tabulate

type row = { experiment : string; summary : Validation.summary }

type t = {
  scale : Experiments.scale;
  code_version : string;
  rows : row list;
}

let schema = "hextime-accuracy-v1"

let collect ?exec scale =
  let rows =
    List.filter_map
      (fun (e : Experiments.t) ->
        match (Sweep.baseline ?exec e).Sweep.points with
        | [] -> None
        | points ->
            Some
              {
                experiment = Experiments.id e;
                summary = Validation.analyze points;
              })
      (Experiments.all scale)
  in
  { scale; code_version = Sweep.code_version; rows }

let to_json t =
  Minijson.Obj
    [
      ("schema", Minijson.Str schema);
      ("scale", Minijson.Str (Experiments.scale_to_string t.scale));
      ("code_version", Minijson.Str t.code_version);
      ( "experiments",
        Minijson.Obj
          (List.map
             (fun r ->
               ( r.experiment,
                 Minijson.Obj
                   (List.map
                      (fun (k, v) -> (k, Minijson.Num v))
                      (Validation.metrics r.summary)) ))
             t.rows) );
    ]

(* Summaries round-trip through their [Validation.metrics] rendering: the
   baseline file stores exactly the fields the gate judges. *)
let summary_of_fields fields =
  let num name =
    match Option.bind (List.assoc_opt name fields) Minijson.number with
    | Some v -> v
    | None -> nan
  in
  {
    Validation.points = int_of_float (num "points");
    rmse_all = num "rmse_all";
    top_points = int_of_float (num "top_points");
    rmse_top = num "rmse_top";
    correlation_top = num "correlation_top";
    best_gflops = num "best_gflops";
    argmin_quality = num "argmin_quality";
    argmin_in_band = num "argmin_in_band" = 1.0;
  }

let of_json json =
  match Option.bind (Minijson.member "schema" json) Minijson.string with
  | Some s when s = schema -> (
      let scale =
        match
          Option.bind (Minijson.member "scale" json) Minijson.string
        with
        | Some s -> Experiments.scale_of_string s
        | None -> Error "missing \"scale\""
      in
      match scale with
      | Error e -> Error e
      | Ok scale ->
          Ok
            {
              scale;
              code_version =
                Option.value ~default:""
                  (Option.bind
                     (Minijson.member "code_version" json)
                     Minijson.string);
              rows =
                (match Minijson.member "experiments" json with
                | Some (Minijson.Obj exps) ->
                    List.filter_map
                      (fun (name, v) ->
                        match v with
                        | Minijson.Obj fields ->
                            Some
                              {
                                experiment = name;
                                summary = summary_of_fields fields;
                              }
                        | _ -> None)
                      exps
                | _ -> []);
            })
  | Some other -> Error (Printf.sprintf "unknown schema %S" other)
  | None -> Error "missing \"schema\" field"

let write ~path t = Export.write_file ~path (Minijson.render (to_json t))

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match Minijson.parse contents with
      | Error e -> Error (path ^ ": " ^ e)
      | Ok json -> (
          match of_json json with
          | Error e -> Error (path ^ ": " ^ e)
          | Ok t -> Ok t))

type tolerances = {
  rmse_all : float;
  rmse_top : float;
  correlation_top : float;
  argmin_quality : float;
}

let default_tolerances =
  {
    rmse_all = 0.10;
    rmse_top = 0.02;
    correlation_top = 0.05;
    argmin_quality = 0.05;
  }

type drift = {
  d_experiment : string;
  d_metric : string;
  d_baseline : float;
  d_current : float;
  d_allowed : string;
}

let compare ?(tol = default_tolerances) ~baseline current =
  let drifts = ref [] in
  let push d = drifts := d :: !drifts in
  List.iter
    (fun (b : row) ->
      match
        List.find_opt (fun (c : row) -> c.experiment = b.experiment)
          current.rows
      with
      | None ->
          push
            {
              d_experiment = b.experiment;
              d_metric = "points";
              d_baseline = float_of_int b.summary.Validation.points;
              d_current = 0.0;
              d_allowed = "experiment missing from current figures";
            }
      | Some c ->
          let bs = b.summary and cs = c.summary in
          (* higher is worse *)
          let ceil_check metric bv cv allowed =
            if
              (not (Float.is_nan bv))
              && (not (Float.is_nan cv))
              && cv > bv +. allowed
            then
              push
                {
                  d_experiment = b.experiment;
                  d_metric = metric;
                  d_baseline = bv;
                  d_current = cv;
                  d_allowed = Printf.sprintf "<= %.4f" (bv +. allowed);
                }
          in
          (* lower is worse *)
          let floor_check metric bv cv allowed =
            if
              (not (Float.is_nan bv))
              && (not (Float.is_nan cv))
              && cv < bv -. allowed
            then
              push
                {
                  d_experiment = b.experiment;
                  d_metric = metric;
                  d_baseline = bv;
                  d_current = cv;
                  d_allowed = Printf.sprintf ">= %.4f" (bv -. allowed);
                }
          in
          ceil_check "rmse_all" bs.Validation.rmse_all cs.Validation.rmse_all
            tol.rmse_all;
          ceil_check "rmse_top" bs.Validation.rmse_top cs.Validation.rmse_top
            tol.rmse_top;
          floor_check "correlation_top" bs.Validation.correlation_top
            cs.Validation.correlation_top tol.correlation_top;
          floor_check "argmin_quality" bs.Validation.argmin_quality
            cs.Validation.argmin_quality tol.argmin_quality;
          if bs.Validation.argmin_in_band && not cs.Validation.argmin_in_band
          then
            push
              {
                d_experiment = b.experiment;
                d_metric = "argmin_in_band";
                d_baseline = 1.0;
                d_current = 0.0;
                d_allowed = "predicted arg-min must stay in the top band";
              })
    baseline.rows;
  List.rev !drifts

let render_table t =
  let tab =
    Tabulate.create
      ~title:
        (Printf.sprintf "Accuracy figures (scale %s, %s)"
           (Experiments.scale_to_string t.scale)
           t.code_version)
      [
        ("experiment", Tabulate.Left);
        ("points", Tabulate.Right);
        ("RMSE all", Tabulate.Right);
        ("RMSE top", Tabulate.Right);
        ("r(top)", Tabulate.Right);
        ("argmin", Tabulate.Right);
        ("in band", Tabulate.Right);
      ]
  in
  Tabulate.render
    (List.fold_left
       (fun tab r ->
         let s = r.summary in
         Tabulate.add_row tab
           [
             r.experiment;
             string_of_int s.Validation.points;
             Printf.sprintf "%.1f%%" (100.0 *. s.Validation.rmse_all);
             Printf.sprintf "%.2f%%" (100.0 *. s.Validation.rmse_top);
             Printf.sprintf "%.3f" s.Validation.correlation_top;
             Printf.sprintf "%.1f%%" (100.0 *. s.Validation.argmin_quality);
             (if s.Validation.argmin_in_band then "yes" else "NO");
           ])
       tab t.rows)

let render_drifts = function
  | [] -> "accuracy-compare: no drift\n"
  | drifts ->
      let tab =
        Tabulate.create
          ~title:"Accuracy drift beyond tolerance"
          [
            ("experiment", Tabulate.Left);
            ("metric", Tabulate.Left);
            ("baseline", Tabulate.Right);
            ("current", Tabulate.Right);
            ("required", Tabulate.Left);
          ]
      in
      Tabulate.render
        (List.fold_left
           (fun tab d ->
             Tabulate.add_row tab
               [
                 d.d_experiment;
                 d.d_metric;
                 Printf.sprintf "%.4f" d.d_baseline;
                 Printf.sprintf "%.4f" d.d_current;
                 d.d_allowed;
               ])
           tab drifts)
