(** CSV export of experiment data, for replotting the figures with external
    tooling.  Columns are stable and documented per function. *)

val sweep_csv : Sweep.point list -> string
(** One row per data point:
    [config,t_t,t_s...,threads,predicted_s,measured_s,gflops,k_model,k_measured,spilled]. *)

val fig4_csv : Figures.fig4 -> string
(** [t_t,t_s2,talg_s] rows for the surface. *)

val fig6_csv : Figures.fig6_row list -> string
(** [stencil,arch,strategy,gflops] rows. *)

val scatter_csv : (float * float) list -> string
(** [predicted_s,measured_s] rows (Figure 3 coordinates). *)

val write_file : path:string -> string -> (unit, string) result
(** Write a CSV to disk; errors are returned, not raised. *)
