(** Cost accounting for the paper's experimental campaign (Section 8).

    The authors note that "a large part of the time and effort of conducting
    our experiments was the code generation effort": HHC fixes tile sizes at
    compile time, so every one of the 108,800 data points is a separate
    compiler + nvcc invocation of tens of seconds, plus five measured runs —
    "many weeks of dedicated machine time" in total.  This module prices a
    campaign from this repository's own data: the measured (simulated)
    execution time of every data point, and a parameterised per-point
    compilation cost, quantifying both the paper's figure and the appeal of
    the parametric code generation it proposes as future work. *)

type estimate = {
  experiments : int;
  data_points : int;
      (** feasible points only — the ones the campaign actually pays for *)
  rejected_points : int;
      (** configurations the compiler/device rejected; reported separately
          so they can no longer inflate the compile bill *)
  compile_hours : float;  (** one compiler+nvcc invocation per point *)
  run_hours : float;  (** five measured runs per point *)
  total_days : float;
}

val estimate :
  ?compile_seconds_per_point:float ->
  ?runs_per_point:int ->
  ?exec:Hextime_parsweep.Parsweep.exec ->
  Experiments.scale ->
  estimate
(** Price the campaign at the given scale.  [compile_seconds_per_point]
    defaults to 20 s (the paper says compilation "ran into several tens of
    seconds" for some points); [runs_per_point] defaults to the paper's 5.
    Execution times come from the simulator; rejected points are counted in
    [rejected_points] and cost nothing.  [exec] selects the
    {!Hextime_parsweep.Parsweep} execution strategy (serial by default). *)

val render : estimate -> string
