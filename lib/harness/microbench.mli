(** Micro-benchmarks deriving the model's timing constants (Section 5.2).

    The paper measures L, tau_sync, T_sync (Table 3) and the per-stencil
    C_iter (Table 4) on hardware with kernels "implemented such that the
    execution time is dominated by the operation of interest".  We run the
    same protocol against the execution simulator:

    - L from the slope of streaming-kernel time over transfer size;
    - T_sync from the slope of total time over launch count for an
      empty kernel;
    - tau_sync by differencing two compute kernels whose rows need one vs
      two issue rounds (cancelling the per-point cost);
    - C_iter by timing 70 deterministic pseudo-random tile shapes with the
      global traffic removed and dividing by the iteration count, averaged
      (exactly the Section 5.2 recipe, including its contamination by
      thread-count and sync effects — that contamination is part of why the
      measured constant works well for realistic configurations). *)

val measure_l : Hextime_gpu.Arch.t -> float
(** Seconds per 4-byte word of streamed global traffic. *)

val measure_tau_sync : Hextime_gpu.Arch.t -> float
val measure_t_sync : Hextime_gpu.Arch.t -> float

val params : Hextime_gpu.Arch.t -> Hextime_core.Params.t
(** Assembled (and memoized) machine parameters for an architecture. *)

val citer :
  ?precision:Hextime_stencil.Problem.precision ->
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Stencil.t ->
  float
(** Measured (and memoized) C_iter for a stencil on an architecture; F64
    pays Maxwell's double-precision throughput penalty. *)

val citer_samples : int
(** Number of random instances averaged for C_iter (70, as in the paper). *)
