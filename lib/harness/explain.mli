(** hexlens: term-by-term attribution diffing between two ledger records.

    [hextime watch] tells you {e that} a metric moved; [hextime explain]
    tells you {e why}: which of the paper's Section-5 terms (compute,
    global-memory transfer, sync, launch) accounts for the delta between
    two runs, whether the [max(m', c)] overlap decision flipped the
    configuration between compute- and memory-bound, and whether the
    chosen tile itself changed.

    Two sources of components per record, in preference order: stored
    [attr.*] metrics (the serve audit path writes them via
    {!attribution_metrics}), else a recomputation through
    {!Hextime_core.Model.attribution} from the record's provenance labels
    (arch, stencil, space, time, config).  When a record carries both,
    {!verify} cross-checks them. *)

val attribution_metrics :
  Hextime_core.Model.prediction ->
  Hextime_obs.Attribution.components ->
  (string * float) list
(** The [attr.<term>] component metrics plus the [pred.*] scalars
    (talg, m_transfer, c_compute, k, chunks, sm_rounds, n_wavefronts)
    that make a ledger record diffable offline.  Producers (the serve
    audit path) splice this into the record's [metrics]. *)

val stored_components : Hextime_obs.Ledger.entry -> (string * float) list
(** The record's [attr.*] metrics with the prefix stripped; [[]] when it
    carries none. *)

val recompute :
  Hextime_obs.Ledger.entry ->
  ( Hextime_core.Model.prediction * Hextime_obs.Attribution.components,
    string )
  result
(** Re-run {!Hextime_core.Model.attribution} from the record's [arch],
    [stencil], [space] (["512x512"]), [time] and [config]
    (["tT8-tS32x32-thr256"], the {!Hextime_tiling.Config.id} format)
    labels, using the same microbenchmark-derived parameters the live
    pipeline uses. *)

val eligible : Hextime_obs.Ledger.entry -> bool
(** Carries stored components or enough labels to recompute them. *)

val verify : Hextime_obs.Ledger.entry -> float option
(** Max relative error between the record's stored components and a fresh
    recomputation (scaled by the larger of the component magnitude and
    talg); [None] when the record lacks either side. *)

type term_delta = {
  t_name : string;
  t_a : float;
  t_b : float;
  t_delta : float;  (** [t_b -. t_a] *)
}

val diff :
  a:(string * float) list -> b:(string * float) list -> term_delta list
(** Union of term names, A's order first; a term absent on one side
    contributes 0. *)

val dominant : term_delta list -> term_delta option
(** The term with the largest [|t_delta|]; [None] if nothing moved. *)

val bound_of : m_transfer:float -> c_compute:float -> string
(** Which side of the model's [max(m', c)] per-chunk bound a prediction
    sits on: ["memory-bound (m' > c)"] or ["compute-bound (c >= m')"]. *)

val decision_flips :
  a:Hextime_obs.Ledger.entry -> b:Hextime_obs.Ledger.entry -> string list
(** Human-readable notes on discrete decisions that differ between the
    records: the max(m', c) bound flipping, integer model quantities
    (k, chunks, sm_rounds, n_wavefronts) changing, the chosen tile
    ([config] label) changing.  Empty when nothing discrete moved. *)

val describe : Hextime_obs.Ledger.entry -> string
(** One-line identity: arch/stencil (or kind), timestamp, git rev, code
    version. *)

val render :
  a:Hextime_obs.Ledger.entry ->
  b:Hextime_obs.Ledger.entry ->
  (string, string) result
(** The full explain report: sources, cross-check, term table with
    per-term share of total movement, component-sum Talg delta, dominant
    term, decision flips.  [Error] when either side yields no
    components. *)
