let render ?(width = 64) ?(height = 24) ?title pairs =
  if pairs = [] then invalid_arg "Scatter.render: no points";
  if width < 8 || height < 4 then invalid_arg "Scatter.render: canvas too small";
  List.iter
    (fun (p, m) ->
      if p <= 0.0 || m <= 0.0 then
        invalid_arg "Scatter.render: non-positive coordinate")
    pairs;
  let logs = List.map (fun (p, m) -> (log10 p, log10 m)) pairs in
  let xs = List.map fst logs and ys = List.map snd logs in
  let lo = min (List.fold_left min infinity xs) (List.fold_left min infinity ys) in
  let hi = max (List.fold_left max neg_infinity xs) (List.fold_left max neg_infinity ys) in
  let span = if hi > lo then hi -. lo else 1.0 in
  let cell v = int_of_float ((v -. lo) /. span *. float_of_int (width - 1)) in
  let cell_y v =
    (height - 1) - int_of_float ((v -. lo) /. span *. float_of_int (height - 1))
  in
  let counts = Array.make_matrix height width 0 in
  List.iter
    (fun (x, y) ->
      let cx = min (width - 1) (max 0 (cell x)) in
      let cy = min (height - 1) (max 0 (cell_y y)) in
      counts.(cy).(cx) <- counts.(cy).(cx) + 1)
    logs;
  let glyph n =
    if n = 0 then None
    else if n <= 1 then Some '.'
    else if n <= 4 then Some ':'
    else if n <= 16 then Some '*'
    else Some '#'
  in
  let b = Buffer.create ((width + 4) * (height + 4)) in
  (match title with
  | Some t ->
      Buffer.add_string b t;
      Buffer.add_char b '\n'
  | None -> ());
  for row = 0 to height - 1 do
    Buffer.add_string b "  |";
    for col = 0 to width - 1 do
      (* the y = x diagonal runs from bottom-left to top-right *)
      let on_diagonal =
        let drow = (height - 1) - row in
        abs ((drow * (width - 1)) - (col * (height - 1))) * 2
        < max (width - 1) (height - 1)
      in
      match glyph counts.(row).(col) with
      | Some c -> Buffer.add_char b c
      | None -> Buffer.add_char b (if on_diagonal then '/' else ' ')
    done;
    Buffer.add_string b "|\n"
  done;
  Buffer.add_string b
    (Printf.sprintf
       "   log10(time/s): %.2f .. %.2f on both axes; '/' marks predicted = \
        measured; . : * # = 1/4/16/more points\n"
       lo hi);
  Buffer.contents b
