module Gpu = Hextime_gpu
module Ints = Hextime_prelude.Ints
module Det_hash = Hextime_prelude.Det_hash
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Params = Hextime_core.Params

let empty_body =
  { Gpu.Pointcost.flops = 0; loads = 0; transcendentals = 0; rank = 1;
    double = false }

let kernel_time arch kernel =
  match Gpu.Simulator.run_kernel ~jitter:false arch kernel with
  | Ok st -> st.Gpu.Simulator.time_s
  | Error msg -> invalid_arg ("Microbench: infeasible micro-kernel: " ^ msg)

(* one block per SM, no hyper-threading: reserve the whole per-block cap *)
let micro_workload (arch : Gpu.Arch.t) ~label ~threads ~rows ~in_words ~run_length =
  Gpu.Workload.v ~label ~threads ~shared_words:arch.shared_mem_per_block
    ~regs_per_thread:24 ~body:empty_body ~rows
    ~input:{ Gpu.Memory.words = in_words; run_length }
    ~output:{ Gpu.Memory.words = 0; run_length }
    ~row_stride:1 ~chunks:1

let micro_kernel arch ~label ~threads ~rows ~in_words ~run_length =
  let w = micro_workload arch ~label ~threads ~rows ~in_words ~run_length in
  Gpu.Kernel.v ~label ~blocks:[ (w, arch.Gpu.Arch.n_sm) ]

let one_row = [ { Gpu.Workload.points = 1; repeats = 1 } ]

let measure_l (arch : Gpu.Arch.t) =
  let time w =
    kernel_time arch
      (micro_kernel arch
         ~label:(Printf.sprintf "ubench-L-%d" w)
         ~threads:256 ~rows:one_row ~in_words:w ~run_length:256)
  in
  let w1 = 1 lsl 20 and w2 = 1 lsl 22 in
  (* slope over transfer size cancels launch overhead and DRAM latency;
     every SM streams concurrently, so the slope is the device-level cost
     per word — the quantity the paper's Table 3 reports *)
  (time w2 -. time w1) /. float_of_int ((w2 - w1) * arch.n_sm)

let measure_t_sync (arch : Gpu.Arch.t) =
  let nearly_empty =
    micro_kernel arch ~label:"ubench-Tsync" ~threads:256 ~rows:one_row
      ~in_words:0 ~run_length:32
  in
  let time n =
    match Gpu.Simulator.run_sequence ~jitter:false arch [ (nearly_empty, n) ] with
    | Ok st -> st.Gpu.Simulator.total_s
    | Error msg -> invalid_arg ("Microbench: " ^ msg)
  in
  (time 101 -. time 1) /. 100.0

let measure_tau_sync (arch : Gpu.Arch.t) =
  let repeats = 1_000_000 in
  (* saturate the SMs with resident blocks so the barrier's pipeline bubble
     is overlap-filled and the timing isolates the issue cost itself *)
  let resident = 8 in
  let time points =
    let w =
      Gpu.Workload.v
        ~label:(Printf.sprintf "ubench-tau-%d" points)
        ~threads:256
        ~shared_words:(arch.shared_mem_per_sm / resident)
        ~regs_per_thread:24 ~body:empty_body
        ~rows:[ { Gpu.Workload.points; repeats } ]
        ~input:{ Gpu.Memory.words = 0; run_length = 32 }
        ~output:{ Gpu.Memory.words = 0; run_length = 32 }
        ~row_stride:1 ~chunks:1
    in
    kernel_time arch
      (Gpu.Kernel.v
         ~label:(Printf.sprintf "ubench-tau-%d" points)
         ~blocks:[ (w, resident * arch.Gpu.Arch.n_sm) ])
    /. float_of_int resident
  in
  (* rows of nV points need one issue round; rows of 2*nV need two; the
     difference isolates the per-round cost, and subtracting it from the
     one-round row leaves the synchronisation *)
  let t1 = time arch.n_vector and t2 = time (2 * arch.n_vector) in
  ((2.0 *. t1) -. t2) /. float_of_int repeats

let params_cache : (string, Params.t) Hashtbl.t = Hashtbl.create 4

let params arch =
  let key = arch.Gpu.Arch.name in
  match Hashtbl.find_opt params_cache key with
  | Some p -> p
  | None ->
      let p =
        Params.of_microbenchmarks arch ~l_word:(measure_l arch)
          ~tau_sync:(measure_tau_sync arch) ~t_sync:(measure_t_sync arch)
      in
      Hashtbl.add params_cache key p;
      p

let citer_samples = 70

(* a deterministic pseudo-random pick from a list *)
let pick h xs =
  let n = List.length xs in
  List.nth xs (Int64.to_int (Int64.rem (Det_hash.to_int64 h) (Int64.of_int n)) |> abs)

let citer_problem ~precision (stencil : Stencil.t) =
  let space =
    match stencil.Stencil.rank with
    | 1 -> [| 65536 |]
    | 2 -> [| 2048; 2048 |]
    | _ -> [| 256; 256; 256 |]
  in
  Problem.make ~precision stencil ~space ~time:64

let random_shape h (stencil : Stencil.t) =
  let t_t = pick (Det_hash.mix_int h 1) [ 4; 8; 12; 16; 20 ] in
  let t_s =
    match stencil.Stencil.rank with
    | 1 -> [| pick (Det_hash.mix_int h 2) [ 16; 32; 64; 128 ] |]
    | 2 ->
        [|
          pick (Det_hash.mix_int h 2) [ 8; 12; 16; 24 ];
          pick (Det_hash.mix_int h 3) [ 64; 96; 128 ];
        |]
    | _ ->
        [|
          pick (Det_hash.mix_int h 2) [ 2; 4; 8 ];
          pick (Det_hash.mix_int h 3) [ 4; 8; 16 ];
          pick (Det_hash.mix_int h 4) [ 32; 64 ];
        |]
  in
  let threads = pick (Det_hash.mix_int h 5) [ 256; 384; 512 ] in
  Config.make ~t_t ~t_s ~threads:[| threads |]

(* iterations in the Section 5.2 sense: issue rounds per vector unit *)
let iterations (arch : Gpu.Arch.t) (w : Gpu.Workload.t) =
  w.Gpu.Workload.chunks
  * List.fold_left
      (fun acc (r : Gpu.Workload.row) ->
        acc + (r.repeats * Ints.ceil_div r.points arch.n_vector))
      0 w.Gpu.Workload.rows

let citer_once ~precision arch stencil ~sample =
  (* seed from the pricing digests, not the names: renaming an architecture
     or a linear stencil must not reshuffle the sampled shapes, or the mean
     shifts and a pricing-neutral rename would cold-miss the sweep cache *)
  let h =
    Det_hash.create "citer"
    |> fun h ->
    Gpu.Arch.mix_pricing h arch
    |> fun h ->
    Stencil.mix_pricing h stencil
    |> fun h -> Det_hash.mix_int h sample
  in
  match random_shape h stencil with
  | Error _ -> None
  | Ok cfg -> (
      let problem = citer_problem ~precision stencil in
      match Hextime_tiling.Lower.workload problem cfg ~family:Hextime_tiling.Hexgeom.Green with
      | Error _ -> None
      | Ok w ->
          (* strip the global traffic and pin one block per SM, as the paper
             does when timing the loop body *)
          (* run at a representative residency (4 blocks/SM): generated
             codes execute hyper-threaded, so the timing should amortise the
             barrier bubbles the same way *)
          let resident = 4 in
          let stripped =
            Gpu.Workload.v
              ~label:(Printf.sprintf "ubench-citer-%d" sample)
              ~threads:w.Gpu.Workload.threads
              ~shared_words:(arch.shared_mem_per_sm / resident)
              ~regs_per_thread:24 ~body:w.Gpu.Workload.body
              ~rows:w.Gpu.Workload.rows
              ~input:{ Gpu.Memory.words = 0; run_length = 32 }
              ~output:{ Gpu.Memory.words = 0; run_length = 32 }
              ~row_stride:w.Gpu.Workload.row_stride
              ~chunks:w.Gpu.Workload.chunks
          in
          let kernel =
            Gpu.Kernel.v
              ~label:stripped.Gpu.Workload.label
              ~blocks:[ (stripped, resident * arch.n_sm) ]
          in
          let total = kernel_time arch kernel in
          let body_time =
            (total -. arch.launch_overhead_s) /. float_of_int resident
          in
          Some (body_time /. float_of_int (iterations arch stripped)))

let citer_cache : (string * string * bool, float) Hashtbl.t = Hashtbl.create 16

let citer ?(precision = Problem.F32) arch stencil =
  let key =
    (arch.Gpu.Arch.name, stencil.Stencil.name, precision = Problem.F64)
  in
  match Hashtbl.find_opt citer_cache key with
  | Some c -> c
  | None ->
      let samples =
        List.filter_map
          (fun i -> citer_once ~precision arch stencil ~sample:i)
          (Ints.range 0 (citer_samples - 1))
      in
      if samples = [] then
        invalid_arg "Microbench.citer: no feasible random instance";
      let c = Hextime_prelude.Stats.mean samples in
      Hashtbl.add citer_cache key c;
      c
