(** Reproductions of the paper's evaluation figures.

    Each figure has a [*_data] function returning the raw series (used by
    tests and by anyone re-plotting) and a [render_*] function producing the
    plain-text report printed by the bench executable. *)

(** {1 Figure 3 — observed vs model-predicted time} *)

type fig3_row = {
  experiment : string;
  summary : Validation.summary;
}

val fig3_data :
  ?limit:int ->
  ?exec:Hextime_parsweep.Parsweep.exec ->
  Experiments.scale ->
  fig3_row list
(** One validation summary per (benchmark, machine): sweeps are merged over
    the scale's problem sizes, exactly as Figure 3 merges sizes per panel.
    [exec] selects the sweep execution strategy (serial by default). *)

val render_fig3 : fig3_row list -> string

(** {1 Figure 4 — T_alg surface for Heat2D on GTX 980, t_s1 = 8} *)

type fig4 = {
  t_s1 : int;
  cells : (int * int * float) list;  (** (t_t, t_s2, T_alg seconds) *)
  minimum : int * int * float;
}

val fig4_data : ?space:int array -> ?time:int -> unit -> fig4
(** Defaults to the paper's 8192^2, T = 8192 instance. *)

val render_fig4 : fig4 -> string

(** {1 Figure 5 — model-guided candidates vs baseline (Gradient2D)} *)

type fig5 = {
  experiment : string;
  baseline_best_s : float;
  candidates : (string * float * float) list;
      (** (shape id, predicted s, measured s) for the within-10% set *)
  best_candidate_s : float;
  improvement_pct : float;
}

val fig5_data : ?scale:Experiments.scale -> unit -> fig5
(** Defaults to the paper's instance (Gradient2D, 8192^2, T = 8192,
    GTX 980) at [Quick]-compatible cost; [scale] only affects the problem
    size used. *)

val render_fig5 : ?max_rows:int -> fig5 -> string
(** [max_rows] truncates the candidate table (the totals always reflect the
    full set). *)

(** {1 Figure 6 — average GFLOP/s per tile-size selection strategy} *)

type fig6_row = {
  stencil : string;
  arch : string;
  per_strategy : (string * float) list;  (** average GFLOP/s over sizes *)
}

val fig6_data :
  ?max_configs:int -> Experiments.scale -> fig6_row list
(** 2D stencils on both machines, averaged over the scale's problem sizes
    (ten sizes at [Paper] scale, as in the figure). *)

val render_fig6 : fig6_row list -> string
