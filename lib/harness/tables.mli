(** Reproductions of the paper's tables as plain-text reports.

    - Table 2: GPU configuration (architecture presets);
    - Table 3: micro-benchmarked timing constants L, tau_sync, T_sync;
    - Table 4: micro-benchmarked C_iter per benchmark and machine. *)

val table2 : unit -> Hextime_prelude.Tabulate.t
val table3 : unit -> Hextime_prelude.Tabulate.t
val table4 : unit -> Hextime_prelude.Tabulate.t

val table3_data : unit -> (string * float * float * float) list
(** Per architecture: (name, L in s/GB, tau_sync, T_sync). *)

val table4_data : unit -> (string * (string * float) list) list
(** Per benchmark: C_iter per architecture. *)
