(** Running the baseline data-point sweep of one experiment: every
    configuration is both predicted by the model and "measured" on the
    simulator, producing the paired data behind Figure 3 and Section 5.3.

    The sweep runs through {!Hextime_parsweep.Parsweep}: pass [?exec] to
    fan configurations out over forked workers and/or memoise completed
    points on disk.  The default is the serial in-process path, and the
    parallel path is bit-identical to it — results are collected in
    configuration order and every worker runs the same deterministic
    code. *)

type point = {
  config : Hextime_tiling.Config.t;
  predicted : Hextime_core.Model.prediction;
  measured : Hextime_tileopt.Runner.measurement;
}

type sweep = {
  points : point list;  (** the surviving points, in baseline order *)
  infeasible_model : int;  (** configurations the model rejected *)
  infeasible_runner : int;
      (** configurations the compiler/device rejected (plus any point lost
          to a worker failure, so a damaged sweep is never silent) *)
}

val code_version : string
(** Cache-key namespace tag for sweep-layer results.  Bump when the model,
    the lowering, the simulator or the measurement protocol changes: stale
    cache entries must miss, not resurface.  Keys additionally digest the
    point's pricing inputs (architecture numbers, model parameters, citer,
    problem structure — names excluded), so an edit that leaves pricing
    unchanged re-prices nothing on a warm cache. *)

val subsample : int option -> 'a list -> 'a list
(** [subsample (Some n) xs] keeps [n] evenly spaced elements, always
    including the first and the last, preserving order ([xs] itself when it
    has at most [n] elements; raises [Invalid_argument] when [n <= 0]).
    Exposed for the harness tests: dropping the final element here once
    silently truncated the top-performing band. *)

val run :
  ?limit:int ->
  ?exec:Hextime_parsweep.Parsweep.exec ->
  Experiments.t ->
  sweep * Hextime_parsweep.Parsweep.stats
(** Predict and measure the experiment's baseline data points (about 850 at
    full size; [limit] deterministically subsamples for quick runs), and
    report the engine statistics (cache hits, retries) alongside. *)

val baseline :
  ?limit:int ->
  ?exec:Hextime_parsweep.Parsweep.exec ->
  Experiments.t ->
  sweep
(** {!run} without the engine statistics. *)

val dropped : sweep -> int
(** Total configurations dropped from the sweep. *)

val pp_drops : Format.formatter -> sweep -> unit
(** e.g. ["117 dropped (32 model-infeasible, 85 runner-rejected)"] — so a
    90%-dropped sweep is never indistinguishable from a clean one. *)

val best_gflops : point list -> float
(** Highest measured throughput in the sweep; raises on empty. *)

val top_performing : within:float -> point list -> point list
(** Points whose measured GFLOP/s is within [within] (e.g. 0.2) of the best
    (the paper's "top performing" subset). *)
