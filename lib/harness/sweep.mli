(** Running the baseline data-point sweep of one experiment: every
    configuration is both predicted by the model and "measured" on the
    simulator, producing the paired data behind Figure 3 and Section 5.3. *)

type point = {
  config : Hextime_tiling.Config.t;
  predicted : Hextime_core.Model.prediction;
  measured : Hextime_tileopt.Runner.measurement;
}

val baseline : ?limit:int -> Experiments.t -> point list
(** Predict and measure the experiment's baseline data points (about 850 at
    full size; [limit] deterministically subsamples for quick runs).
    Points that either the model or the compiler/device rejects are
    dropped, mirroring failed runs in the paper's sweep. *)

val best_gflops : point list -> float
(** Highest measured throughput in the sweep; raises on empty. *)

val top_performing : within:float -> point list -> point list
(** Points whose measured GFLOP/s is within [within] (e.g. 0.2) of the best
    (the paper's "top performing" subset). *)
