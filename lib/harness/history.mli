(** hexwatch: trend rendering over the run ledger.

    [hextime history] and the report's trend section both come through
    here: given ledger entries (see {!Hextime_obs.Ledger}), build a
    one-row-per-run table of the metrics that matter over time —
    accuracy (rmse_top, arg-min quality), sweep throughput (points/sec),
    cache effectiveness — in plain-text, markdown or JSON. *)

val default_columns : string list
(** The metric columns shown when the caller selects none: rmse_top,
    rmse_all, argmin_quality, points_per_sec, cache_hit_rate,
    cold_sweep_points_per_sec.  A column is rendered only if at least one
    entry carries the metric; a missing cell renders as ["-"]. *)

val timestamp : float -> string
(** UTC, ["YYYY-MM-DD HH:MMZ"]. *)

val columns_of : string list -> Hextime_obs.Ledger.entry list -> string list
(** The requested columns filtered to those present in at least one
    entry (requested order preserved). *)

val render :
  ?columns:string list -> Hextime_obs.Ledger.entry list -> string
(** Plain-text trend table, oldest entry first. *)

val markdown :
  ?columns:string list -> Hextime_obs.Ledger.entry list -> string
(** The same table as a markdown pipe table. *)

val json : Hextime_obs.Ledger.entry list -> Hextime_prelude.Minijson.t
(** The full entries (labels, metrics, groups) as a JSON array, oldest
    first. *)

val iso8601 : float -> string
(** UTC, full-seconds ["YYYY-MM-DDTHH:MM:SSZ"] (the CSV timestamp). *)

val csv : ?columns:string list -> Hextime_obs.Ledger.entry list -> string
(** The trend table as RFC-4180 CSV: header row [when,kind,rev,code,...],
    ISO8601 timestamps, raw number rendering (no percent scaling), empty
    cell for a missing metric. *)

val since :
  string ->
  Hextime_obs.Ledger.entry list ->
  (Hextime_obs.Ledger.entry list, string) result
(** Restrict to entries at or after a point in time.  The spec is either
    an ISO8601 date/time (["2026-08-01"], ["2026-08-01T12:30:00"],
    interpreted UTC) — kept entries are those stamped at or after it — or
    a git rev (prefix match either way against the entries' short revs):
    kept entries are the first rev-matching entry and everything after
    it.  [Error] when the spec parses as neither. *)
