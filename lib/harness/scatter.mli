(** ASCII rendering of the Figure 3 scatter: predicted vs measured execution
    time on log-log axes, with the identity diagonal marked.  Dense cells
    darken through [. : * #]. *)

val render :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  (float * float) list ->
  string
(** [render pairs] plots (predicted, measured) pairs; both coordinates must
    be positive.  Default canvas 64x24.  Returns the multi-line plot
    (including axes annotation); raises [Invalid_argument] on an empty list
    or non-positive values. *)
