(* hexlens: term-by-term attribution diffing between two ledger records.

   When a trend alert says "the predicted time moved", the next question
   is *which Section-5 term moved*: compute (c), global-memory transfer
   (m'), synchronisation, launch — and whether the max(m', c) overlap
   decision flipped the configuration from compute- to memory-bound.
   This module answers it from the ledger: records that carry stored
   [attr.*] component metrics (audit records do) are diffed directly;
   records that carry enough provenance labels (arch, stencil, space,
   time, config) are re-run through Model.attribution, and when both are
   possible the stored components are cross-checked against the
   recomputation. *)

module Ledger = Hextime_obs.Ledger
module Attribution = Hextime_obs.Attribution
module Model = Hextime_core.Model
module Gpu = Hextime_gpu
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Tabulate = Hextime_prelude.Tabulate

let attr_prefix = "attr."
let pred_prefix = "pred."

(* The metric fields a record must carry for its attribution to be
   diffable offline; the serve drift monitor writes these on every audit
   record. *)
let attribution_metrics (pr : Model.prediction) comps =
  List.map
    (fun (name, v) -> (attr_prefix ^ name, v))
    (Attribution.to_list comps)
  @ [
      (pred_prefix ^ "talg", pr.Model.talg);
      (pred_prefix ^ "m_transfer", pr.Model.m_transfer);
      (pred_prefix ^ "c_compute", pr.Model.c_compute);
      (pred_prefix ^ "k", float_of_int pr.Model.k);
      (pred_prefix ^ "chunks", float_of_int pr.Model.chunks);
      (pred_prefix ^ "sm_rounds", float_of_int pr.Model.sm_rounds);
      (pred_prefix ^ "n_wavefronts", float_of_int pr.Model.n_wavefronts);
    ]

let strip_prefix p s =
  let lp = String.length p in
  if String.length s > lp && String.sub s 0 lp = p then
    Some (String.sub s lp (String.length s - lp))
  else None

let stored_components (e : Ledger.entry) =
  List.filter_map
    (fun (k, v) ->
      match strip_prefix attr_prefix k with
      | Some name -> Some (name, v)
      | None -> None)
    e.Ledger.metrics

let pred_metric (e : Ledger.entry) name =
  Ledger.metric e (pred_prefix ^ name)

(* --- provenance-label recomputation ---------------------------------------- *)

let ints_of_x s =
  match List.map int_of_string (String.split_on_char 'x' s) with
  | ints -> Some ints
  | exception Failure _ -> None

(* Inverse of Config.id ("tT8-tS32x32-thr256"). *)
let config_of_id s =
  let part prefix p =
    match strip_prefix prefix p with
    | Some rest -> ints_of_x rest
    | None -> None
  in
  match String.split_on_char '-' s with
  | [ tt; ts; thr ] -> (
      match (part "tT" tt, part "tS" ts, part "thr" thr) with
      | Some [ t_t ], Some (_ :: _ as t_s), Some (_ :: _ as threads) ->
          Config.make ~t_t ~t_s:(Array.of_list t_s)
            ~threads:(Array.of_list threads)
      | _ -> Error (Printf.sprintf "unparseable config id %S" s)
      | exception Invalid_argument msg -> Error msg)
  | _ -> Error (Printf.sprintf "unparseable config id %S" s)

let recompute (e : Ledger.entry) =
  let label name =
    match List.assoc_opt name e.Ledger.labels with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "record has no %S label" name)
  in
  let ( let* ) = Result.bind in
  let* arch_name = label "arch" in
  let* arch =
    match Gpu.Arch.find arch_name with
    | a -> Ok a
    | exception Not_found ->
        Error (Printf.sprintf "unknown architecture %S" arch_name)
  in
  let* stencil_name = label "stencil" in
  let* stencil =
    match Stencil.find stencil_name with
    | st -> Ok st
    | exception Not_found ->
        Error (Printf.sprintf "unknown stencil %S" stencil_name)
  in
  let* space_s = label "space" in
  let* space =
    match ints_of_x space_s with
    | Some (_ :: _ as xs) -> Ok (Array.of_list xs)
    | _ -> Error (Printf.sprintf "unparseable space %S" space_s)
  in
  let* time_s = label "time" in
  let* time =
    match int_of_string time_s with
    | t -> Ok t
    | exception Failure _ -> Error (Printf.sprintf "unparseable time %S" time_s)
  in
  let* config_id = label "config" in
  let* cfg = config_of_id config_id in
  let* problem =
    match Problem.make stencil ~space ~time with
    | p -> Ok p
    | exception Invalid_argument msg -> Error msg
  in
  let params = Microbench.params arch in
  let citer = Microbench.citer arch stencil in
  Model.attribution params ~citer problem cfg

let recomputable e = Result.is_ok (recompute e)

(* Components for one side, preferring what the record actually carries;
   the string names the source for the report. *)
let components_of_entry (e : Ledger.entry) =
  match stored_components e with
  | _ :: _ as comps -> Ok (comps, "stored attr.* metrics")
  | [] -> (
      match recompute e with
      | Ok (pr, comps) ->
          Ok
            ( List.map
                (fun (k, v) ->
                  match strip_prefix attr_prefix k with
                  | Some name -> (name, v)
                  | None -> (k, v))
                (List.filter
                   (fun (k, _) -> strip_prefix attr_prefix k <> None)
                   (attribution_metrics pr comps)),
              "recomputed from provenance labels" )
      | Error msg ->
          Error
            (Printf.sprintf
               "record carries neither attr.* metrics nor recomputable \
                labels (%s)"
               msg))

let eligible e =
  stored_components e <> [] || recomputable e

(* Cross-check a record's stored components against a live recomputation;
   [None] when the record lacks one of the two sides. *)
let verify (e : Ledger.entry) =
  match (stored_components e, recompute e) with
  | [], _ | _, Error _ -> None
  | stored, Ok (pr, comps) ->
      let fresh = Attribution.to_list comps in
      let max_rel =
        List.fold_left
          (fun acc (name, v) ->
            match List.assoc_opt name fresh with
            | None -> acc
            | Some f ->
                let scale = Float.max (Float.abs f) (Float.abs pr.Model.talg) in
                let rel =
                  if scale = 0.0 then Float.abs (v -. f)
                  else Float.abs (v -. f) /. scale
                in
                Float.max acc rel)
          0.0 stored
      in
      Some max_rel

(* --- term diffing ---------------------------------------------------------- *)

type term_delta = {
  t_name : string;
  t_a : float;
  t_b : float;
  t_delta : float;  (* b - a *)
}

let diff ~a ~b =
  let names =
    List.map fst a
    @ List.filter (fun n -> not (List.mem_assoc n a)) (List.map fst b)
  in
  List.map
    (fun name ->
      let va = Option.value ~default:0.0 (List.assoc_opt name a) in
      let vb = Option.value ~default:0.0 (List.assoc_opt name b) in
      { t_name = name; t_a = va; t_b = vb; t_delta = vb -. va })
    names

let dominant deltas =
  List.fold_left
    (fun best d ->
      match best with
      | Some b when Float.abs b.t_delta >= Float.abs d.t_delta -> best
      | _ when d.t_delta <> 0.0 -> Some d
      | _ -> best)
    None deltas

(* Which side of the model's max(m', c) overlap bound a prediction sits
   on; the per-chunk time is whichever is larger (Equations 10/16/28). *)
let bound_of ~m_transfer ~c_compute =
  if m_transfer > c_compute then "memory-bound (m' > c)"
  else "compute-bound (c >= m')"

let decision_flips ~(a : Ledger.entry) ~(b : Ledger.entry) =
  let flips = ref [] in
  let note fmt = Printf.ksprintf (fun s -> flips := s :: !flips) fmt in
  (match
     ( pred_metric a "m_transfer",
       pred_metric a "c_compute",
       pred_metric b "m_transfer",
       pred_metric b "c_compute" )
   with
  | Some ma, Some ca, Some mb, Some cb ->
      let ba = bound_of ~m_transfer:ma ~c_compute:ca in
      let bb = bound_of ~m_transfer:mb ~c_compute:cb in
      if ba <> bb then
        note "max(m', c) decision flipped: %s -> %s" ba bb
  | _ -> ());
  List.iter
    (fun scalar ->
      match (pred_metric a scalar, pred_metric b scalar) with
      | Some va, Some vb when va <> vb ->
          note "%s changed: %.0f -> %.0f" scalar va vb
      | _ -> ())
    [ "k"; "chunks"; "sm_rounds"; "n_wavefronts" ];
  (match
     ( List.assoc_opt "config" a.Ledger.labels,
       List.assoc_opt "config" b.Ledger.labels )
   with
  | Some ca, Some cb when ca <> cb ->
      note "chosen tile changed: %s -> %s" ca cb
  | _ -> ());
  List.rev !flips

(* --- report ---------------------------------------------------------------- *)

let describe (e : Ledger.entry) =
  let label name = List.assoc_opt name e.Ledger.labels in
  let id =
    match (label "arch", label "stencil") with
    | Some a, Some s -> Printf.sprintf "%s/%s" a s
    | _ -> e.Ledger.kind
  in
  Printf.sprintf "%s %s (rev %s, %s)" id
    (History.timestamp e.Ledger.time_unix)
    (if e.Ledger.git_rev = "" then "-" else e.Ledger.git_rev)
    e.Ledger.code_version

let render ~(a : Ledger.entry) ~(b : Ledger.entry) =
  let ( let* ) = Result.bind in
  let* ca, src_a = components_of_entry a in
  let* cb, src_b = components_of_entry b in
  let deltas = diff ~a:ca ~b:cb in
  let total_abs =
    List.fold_left (fun acc d -> acc +. Float.abs d.t_delta) 0.0 deltas
  in
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "A: %s — %s" (describe a) src_a;
  line "B: %s — %s" (describe b) src_b;
  (match (verify a, verify b) with
  | None, None -> ()
  | va, vb ->
      let show = function
        | None -> "-"
        | Some rel -> Printf.sprintf "%.3e" rel
      in
      line
        "stored vs recomputed attribution, max relative error: A %s, B %s"
        (show va) (show vb));
  line "";
  let tab =
    Tabulate.create
      [
        ("term", Tabulate.Left);
        ("A (s)", Tabulate.Right);
        ("B (s)", Tabulate.Right);
        ("delta (s)", Tabulate.Right);
        ("share", Tabulate.Right);
      ]
  in
  let tab =
    List.fold_left
      (fun tab d ->
        Tabulate.add_row tab
          [
            d.t_name;
            Printf.sprintf "%.6e" d.t_a;
            Printf.sprintf "%.6e" d.t_b;
            Printf.sprintf "%+.6e" d.t_delta;
            (if total_abs = 0.0 then "-"
             else
               Printf.sprintf "%.1f%%"
                 (100.0 *. Float.abs d.t_delta /. total_abs));
          ])
      tab deltas
  in
  Buffer.add_string buf (Tabulate.render tab);
  let sum_a = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 ca in
  let sum_b = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 cb in
  line "";
  line "Talg (component sum): A %.6e s, B %.6e s, delta %+.6e s (%+.1f%%)"
    sum_a sum_b (sum_b -. sum_a)
    (if sum_a = 0.0 then 0.0 else 100.0 *. (sum_b -. sum_a) /. sum_a);
  (match dominant deltas with
  | None -> line "no term moved: the two records attribute identically"
  | Some d ->
      line "dominant term: %s (delta %+.6e s, %.1f%% of total movement)"
        d.t_name d.t_delta
        (if total_abs = 0.0 then 0.0
         else 100.0 *. Float.abs d.t_delta /. total_abs));
  List.iter (fun f -> line "%s" f) (decision_flips ~a ~b);
  Ok (Buffer.contents buf)
