(** The experiment grid of Section 5: benchmark stencils crossed with
    problem sizes and the two machines — 80 two-dimensional and 48
    three-dimensional experiments at paper scale.

    Because the full grid exists to stress a physical machine for weeks, the
    harness also provides reduced scales that exercise identical code paths:
    [Ci] for the test suite and [Quick] for the default bench run. *)

type scale = Ci | Quick | Paper

type t = {
  arch : Hextime_gpu.Arch.t;
  problem : Hextime_stencil.Problem.t;
}

val scale_of_string : string -> (scale, string) result
val scale_to_string : scale -> string

val sizes_2d : scale -> (int array * int) list
val sizes_3d : scale -> (int array * int) list

val all_2d : scale -> t list
(** The four 2D stencils x sizes x both machines (80 at [Paper] scale). *)

val all_3d : scale -> t list
(** The two 3D stencils x sizes x both machines (48 at [Paper] scale). *)

val all : scale -> t list

val id : t -> string
