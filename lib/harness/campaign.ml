module Runner = Hextime_tileopt.Runner
module Baseline = Hextime_tileopt.Baseline

type estimate = {
  experiments : int;
  data_points : int;
  compile_hours : float;
  run_hours : float;
  total_days : float;
}

let estimate ?(compile_seconds_per_point = 20.0) ?(runs_per_point = 5) scale =
  if compile_seconds_per_point < 0.0 then
    invalid_arg "Campaign.estimate: negative compile cost";
  if runs_per_point < 1 then invalid_arg "Campaign.estimate: runs < 1";
  let experiments = Experiments.all scale in
  let points = ref 0 in
  let run_seconds = ref 0.0 in
  List.iter
    (fun (e : Experiments.t) ->
      let params = Microbench.params e.arch in
      List.iter
        (fun config ->
          incr points;
          match Runner.measure e.arch e.problem config with
          | Ok m ->
              run_seconds :=
                !run_seconds +. (float_of_int runs_per_point *. m.Runner.time_s)
          | Error _ -> ())
        (Baseline.data_points params e.problem))
    experiments;
  let compile_hours =
    float_of_int !points *. compile_seconds_per_point /. 3600.0
  in
  let run_hours = !run_seconds /. 3600.0 in
  {
    experiments = List.length experiments;
    data_points = !points;
    compile_hours;
    run_hours;
    total_days = (compile_hours +. run_hours) /. 24.0;
  }

let render e =
  Printf.sprintf
    "campaign: %d experiments, %d data points\n\
    \  compilation (one HHC+nvcc invocation per point): %.0f hours\n\
    \  execution   (five measured runs per point):      %.0f hours\n\
    \  total: %.1f days of dedicated machine time\n\
    \  (parametric tile code generation, Section 8's proposal, would remove \
     the first line entirely)\n"
    e.experiments e.data_points e.compile_hours e.run_hours e.total_days
