module Runner = Hextime_tileopt.Runner
module Baseline = Hextime_tileopt.Baseline
module Config = Hextime_tiling.Config
module Parsweep = Hextime_parsweep.Parsweep

type estimate = {
  experiments : int;
  data_points : int;
  rejected_points : int;
  compile_hours : float;
  run_hours : float;
  total_days : float;
}

(* Incremental keying, mirroring Sweep.point_key: Runner.measure reads only
   the architecture's numbers, the problem instance and the configuration,
   so the key digests exactly those (no model params, no citer — the
   campaign estimator never prices through the model). *)
let measure_key (e : Experiments.t) config =
  let module D = Hextime_prelude.Det_hash in
  let h = D.create "hextime-measure" in
  let h = D.mix_string h Sweep.code_version in
  let h = Hextime_gpu.Arch.mix_pricing h e.arch in
  let h = Hextime_stencil.Problem.mix_pricing h e.problem in
  Printf.sprintf "measure|%s|%016Lx|%s" Sweep.code_version (D.to_int64 h)
    (Config.id config)

let estimate ?(compile_seconds_per_point = 20.0) ?(runs_per_point = 5)
    ?(exec = Parsweep.serial) scale =
  if compile_seconds_per_point < 0.0 then
    invalid_arg "Campaign.estimate: negative compile cost";
  if runs_per_point < 1 then invalid_arg "Campaign.estimate: runs < 1";
  let experiments = Experiments.all scale in
  let tasks =
    List.concat_map
      (fun (e : Experiments.t) ->
        let params = Microbench.params e.arch in
        List.map
          (fun config -> (e, config))
          (Baseline.data_points params e.problem))
      experiments
  in
  let results, _stats =
    Hextime_obs.Trace.with_span "campaign.estimate"
      ~args:(fun () -> [ ("tasks", string_of_int (List.length tasks)) ])
      (fun () ->
        Parsweep.map
          ~label:
            (Printf.sprintf "campaign %s"
               (Experiments.scale_to_string scale))
          exec
          ~key:(fun (e, config) -> measure_key e config)
          ~f:(fun ((e : Experiments.t), config) ->
            Hextime_obs.Trace.with_span "campaign.measure"
              ~args:(fun () ->
                [
                  ("experiment", Experiments.id e);
                  ("config", Config.id config);
                ])
              (fun () -> Runner.measure e.arch e.problem config))
          tasks)
  in
  (* only configurations that actually build and run cost campaign time;
     rejected ones are reported, not priced — counting them used to inflate
     both the point count and the compilation bill *)
  let feasible = ref 0 in
  let rejected = ref 0 in
  let run_seconds = ref 0.0 in
  List.iter
    (function
      | Ok (Ok (m : Runner.measurement)) ->
          incr feasible;
          run_seconds :=
            !run_seconds +. (float_of_int runs_per_point *. m.Runner.time_s)
      | Ok (Error _) | Error _ -> incr rejected)
    results;
  let compile_hours =
    float_of_int !feasible *. compile_seconds_per_point /. 3600.0
  in
  let run_hours = !run_seconds /. 3600.0 in
  {
    experiments = List.length experiments;
    data_points = !feasible;
    rejected_points = !rejected;
    compile_hours;
    run_hours;
    total_days = (compile_hours +. run_hours) /. 24.0;
  }

let render e =
  Printf.sprintf
    "campaign: %d experiments, %d data points (%d rejected configurations \
     excluded)\n\
    \  compilation (one HHC+nvcc invocation per point): %.0f hours\n\
    \  execution   (five measured runs per point):      %.0f hours\n\
    \  total: %.1f days of dedicated machine time\n\
    \  (parametric tile code generation, Section 8's proposal, would remove \
     the first line entirely)\n"
    e.experiments e.data_points e.rejected_points e.compile_hours e.run_hours
    e.total_days
