(** Markdown reproduction report: the paper-vs-measured comparison of
    EXPERIMENTS.md, regenerated from live runs.

    [markdown scale] runs the micro-benchmarks, the validation sweeps and
    the strategy comparison at the given scale and renders one document
    with the paper's reference numbers inlined next to the measured ones —
    the artifact a reader needs to audit the reproduction. *)

val markdown : ?ledger:string -> Experiments.scale -> string
(** [?ledger] names a hexwatch run-ledger file (see
    {!Hextime_obs.Ledger}); when given and readable, the report ends with
    a trend section over the most recent entries.  An absent or empty
    ledger renders nothing — the report stays generatable on a fresh
    checkout. *)

val write :
  ?ledger:string -> path:string -> Experiments.scale -> (unit, string) result
(** Render and write to [path]. *)
