(** Markdown reproduction report: the paper-vs-measured comparison of
    EXPERIMENTS.md, regenerated from live runs.

    [markdown scale] runs the micro-benchmarks, the validation sweeps and
    the strategy comparison at the given scale and renders one document
    with the paper's reference numbers inlined next to the measured ones —
    the artifact a reader needs to audit the reproduction. *)

val markdown : Experiments.scale -> string

val write : path:string -> Experiments.scale -> (unit, string) result
(** Render and write to [path]. *)
