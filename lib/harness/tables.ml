module Gpu = Hextime_gpu
module Tabulate = Hextime_prelude.Tabulate
module Params = Hextime_core.Params
module Stencil = Hextime_stencil.Stencil

let archs = Gpu.Arch.presets

let table2 () =
  let open Tabulate in
  let t =
    create ~title:"Table 2: GPU configuration"
      (( "Architecture Parameters", Left)
       :: List.map (fun (a : Gpu.Arch.t) -> (a.name, Right)) archs)
  in
  let row name f = name :: List.map f archs in
  add_rows t
    [
      row "nSM" (fun a -> string_of_int a.Gpu.Arch.n_sm);
      row "nV" (fun a -> string_of_int a.Gpu.Arch.n_vector);
      row "MSM [KB]" (fun a -> string_of_int (a.Gpu.Arch.shared_mem_per_sm * 4 / 1024));
      row "RSM" (fun a -> string_of_int a.Gpu.Arch.registers_per_sm);
      row "shared memory banks" (fun a -> string_of_int a.Gpu.Arch.shared_banks);
      row "max threadblocks per SM" (fun a -> string_of_int a.Gpu.Arch.max_blocks_per_sm);
    ]

let table3_data () =
  List.map
    (fun arch ->
      let p = Microbench.params arch in
      ( arch.Gpu.Arch.name,
        Params.l_per_gb p,
        p.Params.tau_sync,
        p.Params.t_sync ))
    archs

let table3 () =
  let open Tabulate in
  let t =
    create ~title:"Table 3: micro-benchmarked parameter values"
      (( "Parameter [unit]", Left)
       :: List.map (fun (a : Gpu.Arch.t) -> (a.name, Right)) archs)
  in
  let data = table3_data () in
  add_rows t
    [
      "L [s/GB]" :: List.map (fun (_, l, _, _) -> float_cell l) data;
      "tau_sync [s]" :: List.map (fun (_, _, tau, _) -> float_cell tau) data;
      "T_sync [s]" :: List.map (fun (_, _, _, ts) -> float_cell ts) data;
    ]

let table4_data () =
  List.map
    (fun stencil ->
      ( stencil.Stencil.name,
        List.map
          (fun arch ->
            (arch.Gpu.Arch.name, Microbench.citer arch stencil))
          archs ))
    (Stencil.benchmarks_2d @ Stencil.benchmarks_3d)

let table4 () =
  let open Tabulate in
  let t =
    create ~title:"Table 4: values of C_iter in seconds"
      (( "Benchmark", Left)
       :: List.map (fun (a : Gpu.Arch.t) -> (a.name, Right)) archs)
  in
  add_rows t
    (List.map
       (fun (name, per_arch) ->
         name :: List.map (fun (_, c) -> float_cell c) per_arch)
       (table4_data ()))
