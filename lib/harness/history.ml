module Ledger = Hextime_obs.Ledger
module Minijson = Hextime_prelude.Minijson
module Tabulate = Hextime_prelude.Tabulate

let default_columns =
  [
    "rmse_top";
    "rmse_all";
    "argmin_quality";
    "points_per_sec";
    "cache_hit_rate";
    "cold_sweep_points_per_sec";
  ]

let timestamp t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02d %02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min

let columns_of requested entries =
  List.filter
    (fun c -> List.exists (fun e -> Ledger.metric e c <> None) entries)
    requested

let cell e col =
  match Ledger.metric e col with
  | None -> "-"
  | Some v ->
      (* percentages for the ratio-valued accuracy metrics, compact
         significant digits for the rest *)
      if
        List.mem col
          [ "rmse_top"; "rmse_all"; "argmin_quality"; "cache_hit_rate" ]
      then Printf.sprintf "%.1f%%" (100.0 *. v)
      else Tabulate.float_cell v

let header_cells = [ "when"; "kind"; "rev"; "code" ]

let row_cells cols e =
  [
    timestamp e.Ledger.time_unix;
    e.Ledger.kind;
    (if e.Ledger.git_rev = "" then "-" else e.Ledger.git_rev);
    e.Ledger.code_version;
  ]
  @ List.map (cell e) cols

let render ?(columns = default_columns) entries =
  let cols = columns_of columns entries in
  let tab =
    Tabulate.create
      (List.map (fun h -> (h, Tabulate.Left)) header_cells
      @ List.map (fun c -> (c, Tabulate.Right)) cols)
  in
  Tabulate.render
    (List.fold_left (fun tab e -> Tabulate.add_row tab (row_cells cols e)) tab
       entries)

let markdown ?(columns = default_columns) entries =
  let cols = columns_of columns entries in
  let b = Buffer.create 1024 in
  let headers = header_cells @ cols in
  Buffer.add_string b ("| " ^ String.concat " | " headers ^ " |\n");
  Buffer.add_string b
    ("|" ^ String.concat "" (List.map (fun _ -> "---|") headers) ^ "\n");
  List.iter
    (fun e ->
      Buffer.add_string b
        ("| " ^ String.concat " | " (row_cells cols e) ^ " |\n"))
    entries;
  Buffer.contents b

let json entries = Minijson.List (List.map Ledger.to_json entries)
