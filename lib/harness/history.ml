module Ledger = Hextime_obs.Ledger
module Minijson = Hextime_prelude.Minijson
module Tabulate = Hextime_prelude.Tabulate

let default_columns =
  [
    "rmse_top";
    "rmse_all";
    "argmin_quality";
    "points_per_sec";
    "cache_hit_rate";
    "cold_sweep_points_per_sec";
  ]

let timestamp t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02d %02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min

let columns_of requested entries =
  List.filter
    (fun c -> List.exists (fun e -> Ledger.metric e c <> None) entries)
    requested

let cell e col =
  match Ledger.metric e col with
  | None -> "-"
  | Some v ->
      (* percentages for the ratio-valued accuracy metrics, compact
         significant digits for the rest *)
      if
        List.mem col
          [ "rmse_top"; "rmse_all"; "argmin_quality"; "cache_hit_rate" ]
      then Printf.sprintf "%.1f%%" (100.0 *. v)
      else Tabulate.float_cell v

let header_cells = [ "when"; "kind"; "rev"; "code" ]

let row_cells cols e =
  [
    timestamp e.Ledger.time_unix;
    e.Ledger.kind;
    (if e.Ledger.git_rev = "" then "-" else e.Ledger.git_rev);
    e.Ledger.code_version;
  ]
  @ List.map (cell e) cols

let render ?(columns = default_columns) entries =
  let cols = columns_of columns entries in
  let tab =
    Tabulate.create
      (List.map (fun h -> (h, Tabulate.Left)) header_cells
      @ List.map (fun c -> (c, Tabulate.Right)) cols)
  in
  Tabulate.render
    (List.fold_left (fun tab e -> Tabulate.add_row tab (row_cells cols e)) tab
       entries)

let markdown ?(columns = default_columns) entries =
  let cols = columns_of columns entries in
  let b = Buffer.create 1024 in
  let headers = header_cells @ cols in
  Buffer.add_string b ("| " ^ String.concat " | " headers ^ " |\n");
  Buffer.add_string b
    ("|" ^ String.concat "" (List.map (fun _ -> "---|") headers) ^ "\n");
  List.iter
    (fun e ->
      Buffer.add_string b
        ("| " ^ String.concat " | " (row_cells cols e) ^ " |\n"))
    entries;
  Buffer.contents b

let json entries = Minijson.List (List.map Ledger.to_json entries)

(* --- csv ------------------------------------------------------------------- *)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv ?(columns = default_columns) entries =
  let cols = columns_of columns entries in
  let b = Buffer.create 1024 in
  let row cells =
    Buffer.add_string b (String.concat "," (List.map csv_escape cells) ^ "\n")
  in
  row (header_cells @ cols);
  List.iter
    (fun e ->
      row
        ([
           iso8601 e.Ledger.time_unix;
           e.Ledger.kind;
           e.Ledger.git_rev;
           e.Ledger.code_version;
         ]
        @ List.map
            (fun c ->
              match Ledger.metric e c with
              | None -> ""
              | Some v -> Minijson.render_number v)
            cols))
    entries;
  Buffer.contents b

(* --- --since selection ----------------------------------------------------- *)

(* "2026-08-01" / "2026-08-01T12:30:00" -> epoch seconds (UTC).  Civil-date
   arithmetic done by hand: timegm is not in the Unix module. *)
let parse_iso8601 s =
  let digits_at off len =
    if off + len > String.length s then None
    else
      match int_of_string (String.sub s off len) with
      | n -> Some n
      | exception Failure _ -> None
  in
  let sep off c = off < String.length s && s.[off] = c in
  match (digits_at 0 4, sep 4 '-', digits_at 5 2, sep 7 '-', digits_at 8 2) with
  | Some y, true, Some mo, true, Some d when mo >= 1 && mo <= 12 ->
      let hh, mm, ss =
        if sep 10 'T' || sep 10 ' ' then
          ( Option.value ~default:0 (digits_at 11 2),
            (if sep 13 ':' then Option.value ~default:0 (digits_at 14 2) else 0),
            if sep 16 ':' then Option.value ~default:0 (digits_at 17 2) else 0 )
        else (0, 0, 0)
      in
      (* days since the epoch via the standard civil-from-days inverse *)
      let y = if mo <= 2 then y - 1 else y in
      let era = (if y >= 0 then y else y - 399) / 400 in
      let yoe = y - (era * 400) in
      let mp = (mo + 9) mod 12 in
      let doy = ((153 * mp) + 2) / 5 + d - 1 in
      let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
      let days = (era * 146097) + doe - 719468 in
      Some
        (float_of_int
           ((days * 86400) + (hh * 3600) + (mm * 60) + ss))
  | _ -> None

let since spec entries =
  match parse_iso8601 spec with
  | Some t0 ->
      Ok (List.filter (fun e -> e.Ledger.time_unix >= t0) entries)
  | None -> (
      (* a git rev prefix: keep from the first entry stamped with it *)
      let matches e =
        e.Ledger.git_rev <> ""
        && (String.length e.Ledger.git_rev >= String.length spec
            && String.sub e.Ledger.git_rev 0 (String.length spec) = spec
           || String.length spec >= String.length e.Ledger.git_rev
              && String.sub spec 0 (String.length e.Ledger.git_rev)
                 = e.Ledger.git_rev)
      in
      let rec drop = function
        | [] -> None
        | e :: _ as rest when matches e -> Some rest
        | _ :: tl -> drop tl
      in
      match drop entries with
      | Some kept -> Ok kept
      | None ->
          Error
            (Printf.sprintf
               "--since %S matches no ISO8601 date and no git rev in the \
                ledger"
               spec))
