module Gpu = Hextime_gpu
module Ints = Hextime_prelude.Ints
module Stats = Hextime_prelude.Stats
module Tabulate = Hextime_prelude.Tabulate
module Stencil = Hextime_stencil.Stencil
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Model = Hextime_core.Model
module Space = Hextime_tileopt.Space
module Optimizer = Hextime_tileopt.Optimizer
module Runner = Hextime_tileopt.Runner
module Strategies = Hextime_tileopt.Strategies

(* --- Figure 3 ---------------------------------------------------------- *)

type fig3_row = { experiment : string; summary : Validation.summary }

let fig3_data ?limit ?exec scale =
  let groups =
    (* merge problem sizes per (stencil, arch) pair, keeping panel order *)
    let tagged =
      List.map
        (fun (e : Experiments.t) ->
          ( ( e.problem.Problem.stencil.Stencil.name,
              e.arch.Gpu.Arch.name ),
            e ))
        (Experiments.all scale)
    in
    let keys =
      List.sort_uniq compare (List.map fst tagged)
    in
    List.map
      (fun key -> (key, List.filter_map (fun (k, e) -> if k = key then Some e else None) tagged))
      keys
  in
  List.filter_map
    (fun ((stencil, arch), exps) ->
      let points =
        List.concat_map
          (fun e -> (Sweep.baseline ?limit ?exec e).Sweep.points)
          exps
      in
      if points = [] then None
      else
        Some
          {
            experiment = Printf.sprintf "%s on %s" stencil arch;
            summary = Validation.analyze points;
          })
    groups

let render_fig3 rows =
  let open Tabulate in
  let t =
    create
      ~title:
        "Figure 3 / Section 5.3: model accuracy (predicted vs measured time)"
      [
        ("Benchmark / machine", Left);
        ("points", Right);
        ("RMSE all", Right);
        ("top-band points", Right);
        ("RMSE top 20%", Right);
        ("r (top)", Right);
        ("best GF/s", Right);
      ]
  in
  render
    (add_rows t
       (List.map
          (fun r ->
            [
              r.experiment;
              string_of_int r.summary.Validation.points;
              Printf.sprintf "%.0f%%" (100.0 *. r.summary.Validation.rmse_all);
              string_of_int r.summary.Validation.top_points;
              Printf.sprintf "%.1f%%" (100.0 *. r.summary.Validation.rmse_top);
              Printf.sprintf "%.3f" r.summary.Validation.correlation_top;
              Printf.sprintf "%.1f" r.summary.Validation.best_gflops;
            ])
          rows))

(* --- Figure 4 ---------------------------------------------------------- *)

type fig4 = {
  t_s1 : int;
  cells : (int * int * float) list;
  minimum : int * int * float;
}

let fig4_data ?(space = [| 8192; 8192 |]) ?(time = 8192) () =
  let arch = Gpu.Arch.gtx980 in
  let params = Microbench.params arch in
  let stencil = Stencil.heat2d in
  let problem = Problem.make stencil ~space ~time in
  let citer = Microbench.citer arch stencil in
  let t_s1 = 8 in
  let cells =
    List.concat_map
      (fun t_t ->
        List.filter_map
          (fun t_s2 ->
            match Config.make ~t_t ~t_s:[| t_s1; t_s2 |] ~threads:[| 128 |] with
            | Error _ -> None
            | Ok cfg -> (
                match Model.predict params ~citer problem cfg with
                | Error _ -> None
                | Ok pr -> Some (t_t, t_s2, pr.Model.talg)))
          (List.map (fun i -> 32 * i) (Ints.range 1 16)))
      (Ints.range ~step:2 2 40)
  in
  let minimum =
    match cells with
    | [] -> invalid_arg "Figures.fig4_data: empty surface"
    | c :: rest ->
        List.fold_left
          (fun ((_, _, bt) as acc) ((_, _, t) as x) ->
            if t < bt then x else acc)
          c rest
  in
  { t_s1; cells; minimum }

let render_fig4 f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Figure 4: Talg for Heat2D on GTX 980 as a function of tT and tS2 \
        (tS1 = %d)\n"
       f.t_s1);
  let t_ts = List.sort_uniq compare (List.map (fun (t, _, _) -> t) f.cells) in
  let t_s2s = List.sort_uniq compare (List.map (fun (_, s, _) -> s) f.cells) in
  let open Tabulate in
  let table =
    create
      (("tT \\ tS2", Right)
       :: List.map (fun s -> (string_of_int s, Right)) t_s2s)
  in
  let table =
    add_rows table
      (List.map
         (fun tt ->
           string_of_int tt
           :: List.map
                (fun s2 ->
                  match
                    List.find_opt (fun (t, s, _) -> t = tt && s = s2) f.cells
                  with
                  | Some (_, _, v) -> Printf.sprintf "%.2f" v
                  | None -> "-")
                t_s2s)
         t_ts)
  in
  Buffer.add_string buf (render table);
  let mt, ms, mv = f.minimum in
  Buffer.add_string buf
    (Printf.sprintf "Talg_min = %.3f s at tT = %d, tS2 = %d\n" mv mt ms);
  Buffer.contents buf

(* --- Figure 5 ---------------------------------------------------------- *)

type fig5 = {
  experiment : string;
  baseline_best_s : float;
  candidates : (string * float * float) list;
  best_candidate_s : float;
  improvement_pct : float;
}

let fig5_data ?(scale = Experiments.Quick) () =
  let arch = Gpu.Arch.gtx980 in
  let stencil = Stencil.gradient2d in
  let space, time =
    match scale with
    | Experiments.Ci -> ([| 512; 512 |], 128)
    | Experiments.Quick | Experiments.Paper -> ([| 8192; 8192 |], 8192)
  in
  let problem = Problem.make stencil ~space ~time in
  let params = Microbench.params arch in
  let citer = Microbench.citer arch stencil in
  let ctx = { Strategies.arch; params; citer; problem } in
  let baseline =
    match Strategies.baseline_best ctx with
    | Ok o -> o.Strategies.measurement.Runner.time_s
    | Error msg -> invalid_arg ("Figures.fig5_data: baseline failed: " ^ msg)
  in
  let space_eval = Optimizer.evaluate_space params ~citer problem in
  let cands = Optimizer.within_fraction ~frac:0.10 space_eval in
  (* cap at the paper's exploration budget (Section 6 reports < 200 points) *)
  let cands =
    List.filteri (fun i _ -> i < 200) cands
  in
  let candidates =
    List.filter_map
      (fun (e : Optimizer.evaluated) ->
        (* each candidate shape measured with its empirically best thread
           count, as in Section 6.1's final experiments *)
        let best =
          List.filter_map
            (fun threads ->
              match
                Config.make ~t_t:e.shape.Space.t_t ~t_s:e.shape.Space.t_s
                  ~threads:[| threads |]
              with
              | Error _ -> None
              | Ok cfg -> (
                  match Runner.measure arch problem cfg with
                  | Ok m -> Some m.Runner.time_s
                  | Error _ -> None))
            Space.thread_candidates
        in
        match best with
        | [] -> None
        | times ->
            Some
              ( Space.id e.shape,
                e.prediction.Model.talg,
                Stats.minimum times ))
      cands
  in
  let best_candidate_s =
    match candidates with
    | [] -> invalid_arg "Figures.fig5_data: no feasible candidate"
    | _ -> Stats.minimum (List.map (fun (_, _, m) -> m) candidates)
  in
  {
    experiment =
      Printf.sprintf "gradient2d %dx%d T=%d on %s" space.(0) space.(1) time
        arch.Gpu.Arch.name;
    baseline_best_s = baseline;
    candidates;
    best_candidate_s;
    improvement_pct = 100.0 *. (baseline -. best_candidate_s) /. baseline;
  }

let render_fig5 ?max_rows f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Figure 5: predicted tile-size performance, %s\n"
       f.experiment);
  let shown =
    match max_rows with
    | None -> f.candidates
    | Some n -> List.filteri (fun i _ -> i < n) f.candidates
  in
  let open Tabulate in
  let t =
    create
      [
        ("candidate shape (within 10% of Talg_min)", Left);
        ("predicted", Right);
        ("measured", Right);
      ]
  in
  let t =
    add_rows t
      (List.map
         (fun (id, p, m) -> [ id; seconds_cell p; seconds_cell m ])
         shown)
  in
  Buffer.add_string buf (render t);
  if List.length shown < List.length f.candidates then
    Buffer.add_string buf
      (Printf.sprintf "... (%d further candidates omitted)\n"
         (List.length f.candidates - List.length shown));
  Buffer.add_string buf
    (Printf.sprintf
       "baseline best = %.3f s; model-guided best = %.3f s; improvement = \
        %.1f%% over %d candidates\n"
       f.baseline_best_s f.best_candidate_s f.improvement_pct
       (List.length f.candidates));
  Buffer.contents buf

(* --- Figure 6 ---------------------------------------------------------- *)

type fig6_row = {
  stencil : string;
  arch : string;
  per_strategy : (string * float) list;
}

let fig6_data ?max_configs scale =
  List.concat_map
    (fun arch ->
      List.map
        (fun stencil ->
          let params = Microbench.params arch in
          let citer = Microbench.citer arch stencil in
          let per_size =
            List.map
              (fun (space, time) ->
                let problem = Problem.make stencil ~space ~time in
                let ctx = { Strategies.arch; params; citer; problem } in
                Strategies.all ?max_configs ctx
                |> List.filter_map (fun (name, outcome) ->
                       match outcome with
                       | Ok o ->
                           Some
                             (name, o.Strategies.measurement.Runner.gflops)
                       | Error _ -> None))
              (Experiments.sizes_2d scale)
          in
          let names =
            match per_size with [] -> [] | first :: _ -> List.map fst first
          in
          let per_strategy =
            List.map
              (fun name ->
                let values =
                  List.filter_map (fun outcomes -> List.assoc_opt name outcomes)
                    per_size
                in
                (name, if values = [] then nan else Stats.mean values))
              names
          in
          {
            stencil = stencil.Stencil.name;
            arch = arch.Gpu.Arch.name;
            per_strategy;
          })
        Stencil.benchmarks_2d)
    Gpu.Arch.presets

let render_fig6 rows =
  let open Tabulate in
  match rows with
  | [] -> "Figure 6: (no data)\n"
  | first :: _ ->
      let strategies = List.map fst first.per_strategy in
      let t =
        create
          ~title:
            "Figure 6: average GFLOP/s per tile-size selection strategy (2D \
             stencils)"
          (("Benchmark / machine", Left)
           :: List.map (fun s -> (s, Right)) strategies)
      in
      render
        (add_rows t
           (List.map
              (fun r ->
                Printf.sprintf "%s on %s" r.stencil r.arch
                :: List.map
                     (fun s ->
                       match List.assoc_opt s r.per_strategy with
                       | Some v when not (Float.is_nan v) ->
                           Printf.sprintf "%.1f" v
                       | _ -> "-")
                     strategies)
              rows))
