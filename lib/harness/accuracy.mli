(** hexwatch: the accuracy regression gate.

    The paper's headline claims are accuracy claims (Section 5.3: RMSE
    45-200% over full sweeps, <10% on the top band; Section 6: the
    predicted arg-min lands in that band).  [hextime bench-compare] already
    fails CI when sweep {e throughput} regresses; this module does the same
    for sweep {e accuracy}: a committed [ACCURACY_baseline.json] plus
    [hextime accuracy-compare], so a model or simulator change that quietly
    degrades rmse_top — while every unit test stays green — fails the
    build.

    The simulator is deterministic, so at a fixed code version the
    collected figures are exactly reproducible; the tolerances exist to
    absorb {e intended} model evolution, not noise.  A PR that improves
    the model beyond tolerance regenerates the baseline (and the diff
    shows by how much). *)

type row = {
  experiment : string;  (** {!Experiments.id} *)
  summary : Validation.summary;
}

type t = {
  scale : Experiments.scale;
  code_version : string;  (** {!Sweep.code_version} at collection time *)
  rows : row list;  (** one per experiment, grid order *)
}

val collect :
  ?exec:Hextime_parsweep.Parsweep.exec -> Experiments.scale -> t
(** Run the full baseline sweep of every experiment at [scale] and analyze
    each.  Experiments whose sweep survives no points are dropped. *)

val schema : string
(** The JSON schema tag, ["hextime-accuracy-v1"]. *)

val to_json : t -> Hextime_prelude.Minijson.t
val of_json : Hextime_prelude.Minijson.t -> (t, string) result

val write : path:string -> t -> (unit, string) result
val load : path:string -> (t, string) result

type tolerances = {
  rmse_all : float;  (** max absolute increase allowed (default 0.10) *)
  rmse_top : float;  (** max absolute increase allowed (default 0.02) *)
  correlation_top : float;  (** max absolute decrease allowed (default 0.05) *)
  argmin_quality : float;  (** max absolute decrease allowed (default 0.05) *)
}

val default_tolerances : tolerances

type drift = {
  d_experiment : string;
  d_metric : string;
  d_baseline : float;
  d_current : float;
  d_allowed : string;  (** human rendering of the violated bound *)
}

val compare : ?tol:tolerances -> baseline:t -> t -> drift list
(** Degradations beyond tolerance, in baseline row order.  Only
    regressions drift: a lower RMSE or higher correlation than the
    baseline always passes.  An experiment present in the baseline but
    missing from the current figures is a drift; a baseline arg-min inside
    the top band that falls out of it is a drift regardless of tolerance.
    NaN correlations (fewer than two top-band points) are skipped. *)

val render_table : t -> string
(** The collected figures as a text table (what [accuracy-compare] prints
    before judging). *)

val render_drifts : drift list -> string
