module Config = Hextime_tiling.Config
module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner

let buffer_csv header rows render =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b (render row);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let sweep_csv points =
  buffer_csv
    "config,t_t,t_s,threads,predicted_s,measured_s,gflops,k_model,k_measured,spilled"
    points
    (fun (p : Sweep.point) ->
      let cfg = p.Sweep.config in
      Printf.sprintf "%s,%d,%s,%d,%.6e,%.6e,%.2f,%d,%d,%d" (Config.id cfg)
        cfg.Config.t_t
        (String.concat "x"
           (Array.to_list (Array.map string_of_int cfg.Config.t_s)))
        (Config.total_threads cfg) p.Sweep.predicted.Model.talg
        p.Sweep.measured.Runner.time_s p.Sweep.measured.Runner.gflops
        p.Sweep.predicted.Model.k p.Sweep.measured.Runner.resident_blocks
        p.Sweep.measured.Runner.spilled_regs)

let fig4_csv (f : Figures.fig4) =
  buffer_csv "t_t,t_s2,talg_s" f.Figures.cells (fun (tt, ts2, v) ->
      Printf.sprintf "%d,%d,%.6e" tt ts2 v)

let fig6_csv rows =
  let flat =
    List.concat_map
      (fun (r : Figures.fig6_row) ->
        List.map
          (fun (strategy, gflops) -> (r.Figures.stencil, r.Figures.arch, strategy, gflops))
          r.Figures.per_strategy)
      rows
  in
  buffer_csv "stencil,arch,strategy,gflops" flat (fun (s, a, st, g) ->
      Printf.sprintf "%s,%s,%s,%.2f" s a st g)

let scatter_csv pairs =
  buffer_csv "predicted_s,measured_s" pairs (fun (p, m) ->
      Printf.sprintf "%.6e,%.6e" p m)

let write_file ~path contents =
  match open_out path with
  | oc ->
      let result =
        try
          output_string oc contents;
          Ok ()
        with Sys_error msg -> Error msg
      in
      close_out oc;
      result
  | exception Sys_error msg -> Error msg
