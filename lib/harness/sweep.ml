module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner
module Baseline = Hextime_tileopt.Baseline

type point = {
  config : Hextime_tiling.Config.t;
  predicted : Model.prediction;
  measured : Runner.measurement;
}

let subsample limit xs =
  match limit with
  | None -> xs
  | Some n ->
      let len = List.length xs in
      if len <= n then xs
      else
        let arr = Array.of_list xs in
        List.init n (fun i -> arr.(i * len / n))

let baseline ?limit (e : Experiments.t) =
  let params = Microbench.params e.arch in
  let citer =
    Microbench.citer e.arch e.problem.Hextime_stencil.Problem.stencil
  in
  Baseline.data_points params e.problem
  |> subsample limit
  |> List.filter_map (fun config ->
         match Model.predict params ~citer e.problem config with
         | Error _ -> None
         | Ok predicted -> (
             match Runner.measure e.arch e.problem config with
             | Error _ -> None
             | Ok measured -> Some { config; predicted; measured }))

let best_gflops = function
  | [] -> invalid_arg "Sweep.best_gflops: empty sweep"
  | points ->
      List.fold_left
        (fun acc p -> max acc p.measured.Runner.gflops)
        0.0 points

let top_performing ~within points =
  if within < 0.0 || within >= 1.0 then
    invalid_arg "Sweep.top_performing: within must be in [0, 1)";
  match points with
  | [] -> []
  | _ ->
      let best = best_gflops points in
      List.filter
        (fun p -> p.measured.Runner.gflops >= (1.0 -. within) *. best)
        points
