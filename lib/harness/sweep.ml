module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner
module Baseline = Hextime_tileopt.Baseline
module Config = Hextime_tiling.Config
module Parsweep = Hextime_parsweep.Parsweep

type point = {
  config : Hextime_tiling.Config.t;
  predicted : Model.prediction;
  measured : Runner.measurement;
}

type sweep = {
  points : point list;
  infeasible_model : int;
  infeasible_runner : int;
}

(* Bump whenever the model, the lowering, the simulator or the measurement
   protocol changes meaning: cached entries from older code must miss.
   v3: priced-kernel simulator core (pricing hoisted out of the per-salt
   measurement loop) and the event simulator's steady-state fast-forward.
   v4: incremental keying — keys digest the point's pricing inputs instead
   of naming the architecture and experiment. *)
let code_version = "hextime-sweep-v4"

let subsample limit xs =
  match limit with
  | None -> xs
  | Some n when n <= 0 -> invalid_arg "Sweep.subsample: limit must be positive"
  | Some n -> (
      let len = List.length xs in
      if len <= n then xs
      else
        let arr = Array.of_list xs in
        match n with
        | 1 -> [ arr.(len - 1) ]
        | n ->
            (* even spacing that always keeps both endpoints: the index
               i*(len-1)/(n-1) is strictly increasing (the step exceeds 1
               whenever len > n), starts at 0 and ends at len-1 — so the
               selection is order-preserving and can never drop the final
               element, where the true sweep maximum may live *)
            List.init n (fun i -> arr.(i * (len - 1) / (n - 1))))

type outcome =
  [ `Point of point | `Infeasible_model of string | `Infeasible_runner of string ]

(* Incremental cache keying.  A point's result is a function of exactly:
   the code version, the architecture's numeric description, the model
   parameters, the per-stencil computational-intensity constant, and the
   problem instance — plus the configuration.  The key digests those
   inputs rather than naming them, so an edit that leaves pricing
   unchanged (renaming an architecture, adding an unrelated preset,
   reshuffling experiment ids) re-prices nothing, while any change to a
   number the result depends on invalidates exactly the affected points.
   The configuration stays textual in the key (and the cache verifies the
   full key on read), so a digest collision between two pricing contexts
   is the only collision surface — 2^-64 per pair of contexts.

   Partially applied on the experiment: the context digest is computed
   once per sweep, not once per point. *)
let point_key params ~citer (e : Experiments.t) =
  let module D = Hextime_prelude.Det_hash in
  let h = D.create "hextime-point" in
  let h = D.mix_string h code_version in
  let h = Hextime_gpu.Arch.mix_pricing h e.arch in
  let h = Hextime_core.Params.mix_pricing h params in
  let h = D.mix_float h citer in
  let h = Hextime_stencil.Problem.mix_pricing h e.problem in
  let prefix = Printf.sprintf "point|%s|%016Lx|" code_version (D.to_int64 h) in
  fun config -> prefix ^ Config.id config

let evaluate params ~citer (e : Experiments.t) config : outcome =
  Hextime_obs.Trace.with_span "sweep.evaluate"
    ~args:(fun () ->
      [ ("experiment", Experiments.id e); ("config", Config.id config) ])
  @@ fun () ->
  match Model.predict params ~citer e.problem config with
  | Error msg -> `Infeasible_model msg
  | Ok predicted -> (
      match Runner.measure e.arch e.problem config with
      | Error msg -> `Infeasible_runner msg
      | Ok measured -> `Point { config; predicted; measured })

let run ?limit ?(exec = Parsweep.serial) (e : Experiments.t) =
  let params = Microbench.params e.arch in
  let citer =
    Microbench.citer e.arch e.problem.Hextime_stencil.Problem.stencil
  in
  let configs = Baseline.data_points params e.problem |> subsample limit in
  let outcomes, stats =
    Hextime_obs.Trace.with_span "sweep.run"
      ~args:(fun () ->
        [
          ("experiment", Experiments.id e);
          ("configs", string_of_int (List.length configs));
        ])
      (fun () ->
        Parsweep.map
          ~label:("sweep " ^ Experiments.id e)
          exec
          ~key:(point_key params ~citer e)
          ~f:(evaluate params ~citer e)
          configs)
  in
  let points, infeasible_model, infeasible_runner =
    List.fold_right
      (fun outcome (pts, im, ir) ->
        match outcome with
        | Ok (`Point p) -> (p :: pts, im, ir)
        | Ok (`Infeasible_model _) -> (pts, im + 1, ir)
        (* an engine-level failure (worker crash/timeout beyond retries)
           drops the point like a rejected run: it is counted, not hidden *)
        | Ok (`Infeasible_runner _) | Error _ -> (pts, im, ir + 1))
      outcomes ([], 0, 0)
  in
  ({ points; infeasible_model; infeasible_runner }, stats)

let baseline ?limit ?exec e = fst (run ?limit ?exec e)

let dropped s = s.infeasible_model + s.infeasible_runner

let pp_drops ppf s =
  Format.fprintf ppf "%d dropped (%d model-infeasible, %d runner-rejected)"
    (dropped s) s.infeasible_model s.infeasible_runner

let best_gflops = function
  | [] -> invalid_arg "Sweep.best_gflops: empty sweep"
  | points ->
      List.fold_left
        (fun acc p -> max acc p.measured.Runner.gflops)
        0.0 points

let top_performing ~within points =
  if within < 0.0 || within >= 1.0 then
    invalid_arg "Sweep.top_performing: within must be in [0, 1)";
  match points with
  | [] -> []
  | _ ->
      let best = best_gflops points in
      List.filter
        (fun p -> p.measured.Runner.gflops >= (1.0 -. within) *. best)
        points
