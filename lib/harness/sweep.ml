module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner
module Baseline = Hextime_tileopt.Baseline
module Config = Hextime_tiling.Config
module Parsweep = Hextime_parsweep.Parsweep

type point = {
  config : Hextime_tiling.Config.t;
  predicted : Model.prediction;
  measured : Runner.measurement;
}

type sweep = {
  points : point list;
  infeasible_model : int;
  infeasible_runner : int;
}

(* Bump whenever the model, the lowering, the simulator or the measurement
   protocol changes meaning: cached entries from older code must miss.
   v3: priced-kernel simulator core (pricing hoisted out of the per-salt
   measurement loop) and the event simulator's steady-state fast-forward. *)
let code_version = "hextime-sweep-v3"

let subsample limit xs =
  match limit with
  | None -> xs
  | Some n when n <= 0 -> invalid_arg "Sweep.subsample: limit must be positive"
  | Some n -> (
      let len = List.length xs in
      if len <= n then xs
      else
        let arr = Array.of_list xs in
        match n with
        | 1 -> [ arr.(len - 1) ]
        | n ->
            (* even spacing that always keeps both endpoints: the index
               i*(len-1)/(n-1) is strictly increasing (the step exceeds 1
               whenever len > n), starts at 0 and ends at len-1 — so the
               selection is order-preserving and can never drop the final
               element, where the true sweep maximum may live *)
            List.init n (fun i -> arr.(i * (len - 1) / (n - 1))))

type outcome =
  [ `Point of point | `Infeasible_model of string | `Infeasible_runner of string ]

(* partially applied on the experiment, so the version|experiment prefix is
   formatted once per sweep rather than once per point *)
let point_key (e : Experiments.t) =
  let prefix = Printf.sprintf "point|%s|%s|" code_version (Experiments.id e) in
  fun config -> prefix ^ Config.id config

let evaluate params ~citer (e : Experiments.t) config : outcome =
  Hextime_obs.Trace.with_span "sweep.evaluate"
    ~args:(fun () ->
      [ ("experiment", Experiments.id e); ("config", Config.id config) ])
  @@ fun () ->
  match Model.predict params ~citer e.problem config with
  | Error msg -> `Infeasible_model msg
  | Ok predicted -> (
      match Runner.measure e.arch e.problem config with
      | Error msg -> `Infeasible_runner msg
      | Ok measured -> `Point { config; predicted; measured })

let run ?limit ?(exec = Parsweep.serial) (e : Experiments.t) =
  let params = Microbench.params e.arch in
  let citer =
    Microbench.citer e.arch e.problem.Hextime_stencil.Problem.stencil
  in
  let configs = Baseline.data_points params e.problem |> subsample limit in
  let outcomes, stats =
    Hextime_obs.Trace.with_span "sweep.run"
      ~args:(fun () ->
        [
          ("experiment", Experiments.id e);
          ("configs", string_of_int (List.length configs));
        ])
      (fun () ->
        Parsweep.map
          ~label:("sweep " ^ Experiments.id e)
          exec ~key:(point_key e)
          ~f:(evaluate params ~citer e)
          configs)
  in
  let points, infeasible_model, infeasible_runner =
    List.fold_right
      (fun outcome (pts, im, ir) ->
        match outcome with
        | Ok (`Point p) -> (p :: pts, im, ir)
        | Ok (`Infeasible_model _) -> (pts, im + 1, ir)
        (* an engine-level failure (worker crash/timeout beyond retries)
           drops the point like a rejected run: it is counted, not hidden *)
        | Ok (`Infeasible_runner _) | Error _ -> (pts, im, ir + 1))
      outcomes ([], 0, 0)
  in
  ({ points; infeasible_model; infeasible_runner }, stats)

let baseline ?limit ?exec e = fst (run ?limit ?exec e)

let dropped s = s.infeasible_model + s.infeasible_runner

let pp_drops ppf s =
  Format.fprintf ppf "%d dropped (%d model-infeasible, %d runner-rejected)"
    (dropped s) s.infeasible_model s.infeasible_runner

let best_gflops = function
  | [] -> invalid_arg "Sweep.best_gflops: empty sweep"
  | points ->
      List.fold_left
        (fun acc p -> max acc p.measured.Runner.gflops)
        0.0 points

let top_performing ~within points =
  if within < 0.0 || within >= 1.0 then
    invalid_arg "Sweep.top_performing: within must be in [0, 1)";
  match points with
  | [] -> []
  | _ ->
      let best = best_gflops points in
      List.filter
        (fun p -> p.measured.Runner.gflops >= (1.0 -. within) *. best)
        points
