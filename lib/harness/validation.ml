module Stats = Hextime_prelude.Stats
module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner

type summary = {
  points : int;
  rmse_all : float;
  top_points : int;
  rmse_top : float;
  correlation_top : float;
  best_gflops : float;
  argmin_quality : float;
  argmin_in_band : bool;
}

let scatter points =
  List.map
    (fun (p : Sweep.point) ->
      (p.predicted.Model.talg, p.measured.Runner.time_s))
    points

let argmin_point = function
  | [] -> invalid_arg "Validation.argmin_point: empty sweep"
  | p :: ps ->
      List.fold_left
        (fun (acc : Sweep.point) (q : Sweep.point) ->
          if q.predicted.Model.talg < acc.predicted.Model.talg then q else acc)
        p ps

let analyze ?(top_within = 0.2) points =
  if points = [] then invalid_arg "Validation.analyze: empty sweep";
  let top = Sweep.top_performing ~within:top_within points in
  let pairs_all = scatter points in
  let pairs_top = scatter top in
  let best = Sweep.best_gflops points in
  (* Section 6's selection claim: the model's predicted arg-min must land
     in the top-performing band.  Quality is the arg-min's measured
     throughput relative to the sweep's best — 1.0 means the model picked
     the actual winner. *)
  let argmin_quality =
    (argmin_point points).measured.Runner.gflops /. best
  in
  {
    points = List.length points;
    rmse_all = Stats.rmse_relative pairs_all;
    top_points = List.length top;
    rmse_top = Stats.rmse_relative pairs_top;
    correlation_top =
      (if List.length pairs_top >= 2 then
         try Stats.pearson pairs_top with Invalid_argument _ -> nan
       else nan);
    best_gflops = best;
    argmin_quality;
    argmin_in_band = argmin_quality >= 1.0 -. top_within;
  }

let metrics s =
  [
    ("points", float_of_int s.points);
    ("rmse_all", s.rmse_all);
    ("top_points", float_of_int s.top_points);
    ("rmse_top", s.rmse_top);
    ("correlation_top", s.correlation_top);
    ("best_gflops", s.best_gflops);
    ("argmin_quality", s.argmin_quality);
    ("argmin_in_band", if s.argmin_in_band then 1.0 else 0.0);
  ]

let pp_summary ppf s =
  Format.fprintf ppf
    "%d points, RMSE(all)=%.1f%%, top band: %d points, RMSE(top)=%.1f%%, \
     r(top)=%.3f, best=%.1f GF/s, argmin at %.0f%% of best (%s)"
    s.points (100.0 *. s.rmse_all) s.top_points (100.0 *. s.rmse_top)
    s.correlation_top s.best_gflops
    (100.0 *. s.argmin_quality)
    (if s.argmin_in_band then "in band" else "OUT OF BAND")
