module Stats = Hextime_prelude.Stats
module Model = Hextime_core.Model
module Runner = Hextime_tileopt.Runner

type summary = {
  points : int;
  rmse_all : float;
  top_points : int;
  rmse_top : float;
  correlation_top : float;
  best_gflops : float;
}

let scatter points =
  List.map
    (fun (p : Sweep.point) ->
      (p.predicted.Model.talg, p.measured.Runner.time_s))
    points

let analyze ?(top_within = 0.2) points =
  if points = [] then invalid_arg "Validation.analyze: empty sweep";
  let top = Sweep.top_performing ~within:top_within points in
  let pairs_all = scatter points in
  let pairs_top = scatter top in
  {
    points = List.length points;
    rmse_all = Stats.rmse_relative pairs_all;
    top_points = List.length top;
    rmse_top = Stats.rmse_relative pairs_top;
    correlation_top =
      (if List.length pairs_top >= 2 then
         try Stats.pearson pairs_top with Invalid_argument _ -> nan
       else nan);
    best_gflops = Sweep.best_gflops points;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%d points, RMSE(all)=%.1f%%, top band: %d points, RMSE(top)=%.1f%%, \
     r(top)=%.3f, best=%.1f GF/s"
    s.points (100.0 *. s.rmse_all) s.top_points (100.0 *. s.rmse_top)
    s.correlation_top s.best_gflops
