module Ir = Hextime_ir.Ir
module Arch = Hextime_gpu.Arch
module Smem = Hextime_gpu.Smem
module Occupancy = Hextime_gpu.Occupancy
module Model = Hextime_core.Model
module Params = Hextime_core.Params
module Problem = Hextime_stencil.Problem
module Config = Hextime_tiling.Config
module Lower = Hextime_tiling.Lower
module Hexgeom = Hextime_tiling.Hexgeom

type severity = Error | Warning

type finding = {
  pass : string;
  severity : severity;
  kernel : string;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let finding ~pass ~severity ~kernel fmt =
  Printf.ksprintf (fun message -> { pass; severity; kernel; message }) fmt

let dedup findings =
  List.fold_left
    (fun (seen, acc) f ->
      if List.mem f seen then (seen, acc) else (f :: seen, f :: acc))
    ([], []) findings
  |> snd |> List.rev

(* ------------------------------------------------------------------ *)
(* Pass 1: shared-memory races across the double buffer.              *)
(* ------------------------------------------------------------------ *)

type access = { desc : string; half : Ir.half; write : bool }

let accesses_of = function
  | Ir.Load_tile { dst; _ } ->
      [ { desc = "tile load"; half = dst; write = true } ]
  | Ir.Store_tile { src; _ } ->
      [ { desc = "tile store"; half = src; write = false } ]
  | Ir.Compute_row c ->
      let d = Printf.sprintf "row %d compute" c.Ir.row.Ir.r in
      [
        { desc = d; half = c.Ir.reads; write = false };
        { desc = d; half = c.Ir.writes; write = true };
      ]
  | Ir.Sync | Ir.Chunk_loop _ -> []

let check_races (k : Ir.kernel) =
  let out = ref [] in
  let emit f = out := f :: !out in
  let name = k.Ir.name in
  let pending = ref [] in
  let step stmt =
    (match stmt with
    | Ir.Compute_row c when c.Ir.reads = c.Ir.writes ->
        emit
          (finding ~pass:"races" ~severity:Error ~kernel:name
             "row %d reads and writes the same buffer half (%s): threads of \
              one row race with each other"
             c.Ir.row.Ir.r (Ir.half_name c.Ir.reads))
    | _ -> ());
    match stmt with
    | Ir.Sync ->
        if !pending = [] then
          emit
            (finding ~pass:"races" ~severity:Warning ~kernel:name
               "redundant barrier: no shared-memory access since the \
                previous __syncthreads()");
        pending := []
    | _ ->
        let accs = accesses_of stmt in
        List.iter
          (fun a ->
            List.iter
              (fun p ->
                if p.half = a.half && (p.write || a.write) && p.desc <> a.desc
                then
                  let kind =
                    match (p.write, a.write) with
                    | true, true -> "write/write"
                    | true, false -> "read-after-write"
                    | false, true -> "write-after-read"
                    | false, false -> assert false
                  in
                  emit
                    (finding ~pass:"races" ~severity:Error ~kernel:name
                       "%s race on buffer half %s: %s then %s with no \
                        barrier between them"
                       kind (Ir.half_name a.half) p.desc a.desc)
              )
              !pending)
          accs;
        pending := !pending @ accs
  in
  List.iter step (Ir.unrolled ~iterations:2 k);
  dedup (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Pass 2: shared-memory bounds.                                      *)
(* ------------------------------------------------------------------ *)

let hex_family = function Ir.Green -> Hexgeom.Green | Ir.Yellow -> Hexgeom.Yellow

let check_bounds (k : Ir.kernel) =
  let out = ref [] in
  let emit f = out := f :: !out in
  let name = k.Ir.name in
  let order = k.Ir.order in
  (* B1: tap offsets within the halo radius *)
  List.iter
    (fun off ->
      if Array.length off <> k.Ir.rank then
        emit
          (finding ~pass:"bounds" ~severity:Error ~kernel:name
             "stencil offset has %d components for a rank-%d kernel"
             (Array.length off) k.Ir.rank)
      else
        Array.iteri
          (fun d o ->
            if abs o > order then
              emit
                (finding ~pass:"bounds" ~severity:Error ~kernel:name
                   "tap offset %d in dimension %d exceeds the order-%d halo \
                    the shared window allocates"
                   o d order))
          off)
    (Ir.rule_offsets k.Ir.rule);
  (* B2: declared allocation consistent with declared extents *)
  let ext_product = Array.fold_left ( * ) 1 k.Ir.smem_ext in
  let expect = 2 * k.Ir.word_factor * ext_product in
  if k.Ir.smem_words <> expect then
    emit
      (finding ~pass:"bounds" ~severity:Error ~kernel:name
         "shared allocation is %d words but the double-buffered extents %s \
          require %d"
         k.Ir.smem_words
         (String.concat "x" (Array.to_list (Array.map string_of_int k.Ir.smem_ext)))
         expect);
  (* B3: every row's window (idealised width + halo) fits the dim-0 extent *)
  let rows = Ir.rows k in
  List.iter
    (fun (r : Ir.row) ->
      if r.Ir.width < 1 then
        emit
          (finding ~pass:"bounds" ~severity:Error ~kernel:name
             "row %d has non-positive width %d" r.Ir.r r.Ir.width)
      else if r.Ir.width + (2 * order) > k.Ir.smem_ext.(0) - 1 then
        emit
          (finding ~pass:"bounds" ~severity:Error ~kernel:name
             "row %d width %d plus its order-%d halo overruns the dim-0 \
              shared extent %d"
             r.Ir.r r.Ir.width order k.Ir.smem_ext.(0)))
    rows;
  (* B5: inner tile extents + halo fit the inner shared extents *)
  for d = 1 to k.Ir.rank - 1 do
    if k.Ir.t_s.(d) + (2 * order) > k.Ir.smem_ext.(d) then
      emit
        (finding ~pass:"bounds" ~severity:Error ~kernel:name
           "inner tile extent %d plus its order-%d halo overruns shared \
            extent %d in dimension %d"
           k.Ir.t_s.(d) order k.Ir.smem_ext.(d) d)
  done;
  (* B4: staged transfers cannot exceed the allocation they stage through *)
  let check_words what words =
    if words > k.Ir.smem_words then
      emit
        (finding ~pass:"bounds" ~severity:Error ~kernel:name
           "%s stages %d words through a %d-word shared allocation" what
           words k.Ir.smem_words)
  in
  check_words "tile load" (Ir.load_words_per_chunk k);
  check_words "tile store" (Ir.store_words_per_chunk k);
  (* B6: boundary tiles of the exact lattice, clipped to the domain, never
     exceed the widest row the buffer is sized for *)
  (if k.Ir.t_t >= 2 && k.Ir.t_t mod 2 = 0 && k.Ir.rank >= 1 then
     let widest =
       List.fold_left (fun acc (r : Ir.row) -> max acc r.Ir.width) 0 rows
     in
     let extra =
       match rows with [] -> 0 | (r : Ir.row) :: _ -> r.Ir.extra
     in
     let fam = hex_family k.Ir.family in
     let t_s0 = k.Ir.t_s.(0) and t_t = k.Ir.t_t in
     let space = k.Ir.space.(0) and time = k.Ir.time in
     let last_index =
       Hexgeom.wavefront_width ~order ~t_s:t_s0 ~t_t ~space - 1
     in
     let last_band = (time + t_t - 1) / t_t in
     List.iter
       (fun (band, index) ->
         let tile = { Hexgeom.family = fam; band; index } in
         List.iter
           (fun (t, lo, hi) ->
             let w = hi - lo + 1 in
             if lo < 0 || hi >= space || t < 1 || t > time then
               emit
                 (finding ~pass:"bounds" ~severity:Error ~kernel:name
                    "boundary tile (band %d, index %d) row at t=%d spans \
                     [%d, %d] outside the iteration domain"
                    band index t lo hi)
             else if w > widest + extra then
               emit
                 (finding ~pass:"bounds" ~severity:Error ~kernel:name
                    "boundary tile (band %d, index %d) row at t=%d is %d \
                     points wide; the buffer is sized for at most %d"
                    band index t w (widest + extra)))
           (Hexgeom.rows_clipped ~order ~t_s:t_s0 ~t_t ~space ~time tile))
       [ (0, 0); (0, last_index); (last_band, 0); (last_band, last_index) ]);
  dedup (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Pass 3: static bank conflicts, cross-checked against Smem pricing. *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let check_banks (arch : Arch.t) ~priced_stride (k : Ir.kernel) =
  let out = ref [] in
  let emit f = out := f :: !out in
  let name = k.Ir.name in
  let strides =
    List.filter_map
      (function Ir.Compute_row c -> Some c.Ir.stride | _ -> None)
      (Ir.unrolled ~iterations:1 k)
    |> List.sort_uniq compare
  in
  List.iter
    (fun stride ->
      if stride < 1 then
        emit
          (finding ~pass:"banks" ~severity:Error ~kernel:name
             "non-positive shared-array stride %d" stride)
      else begin
        if stride <> priced_stride then
          emit
            (finding ~pass:"banks" ~severity:Error ~kernel:name
               "IR row stride %d disagrees with the stride %d the simulator \
                priced: lint and pricing are looking at different schedules"
               stride priced_stride);
        if k.Ir.rank >= 2 then begin
          let degree = gcd stride arch.Arch.shared_banks in
          let expected =
            if degree <= 1 then 1.0
            else 1.0 +. (0.25 *. float_of_int (degree - 1))
          in
          let priced = Smem.conflict_factor arch ~row_stride:stride in
          if abs_float (expected -. priced) > 1e-9 then
            emit
              (finding ~pass:"banks" ~severity:Error ~kernel:name
                 "static bank model disagrees with Smem.conflict_factor for \
                  stride %d: %.4f vs %.4f (cost-model drift)"
                 stride expected priced)
          else if degree > 1 then
            emit
              (finding ~pass:"banks" ~severity:Warning ~kernel:name
                 "row stride %d shares a factor %d with the %d banks: \
                  %d-way serialisation (factor %.2f) the model does not \
                  price"
                 stride degree arch.Arch.shared_banks degree priced)
        end
      end)
    strides;
  dedup (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Pass 4: resource limits and occupancy.                             *)
(* ------------------------------------------------------------------ *)

let limit_name = function
  | Occupancy.Threads -> "thread slots"
  | Occupancy.Blocks -> "block slots"
  | Occupancy.Shared_memory -> "shared memory"
  | Occupancy.Registers -> "registers"

let check_resources (arch : Arch.t) (k : Ir.kernel) =
  let out = ref [] in
  let emit f = out := f :: !out in
  let name = k.Ir.name in
  if k.Ir.threads > arch.Arch.max_threads_per_block then
    emit
      (finding ~pass:"resources" ~severity:Error ~kernel:name
         "%d threads per block exceeds the device cap of %d" k.Ir.threads
         arch.Arch.max_threads_per_block);
  if k.Ir.threads mod arch.Arch.warp_size <> 0 then
    emit
      (finding ~pass:"resources" ~severity:Warning ~kernel:name
         "%d threads is not a multiple of the warp size %d: the trailing \
          partial warp wastes lanes"
         k.Ir.threads arch.Arch.warp_size);
  if k.Ir.smem_words > arch.Arch.shared_mem_per_block then
    emit
      (finding ~pass:"resources" ~severity:Error ~kernel:name
         "shared allocation of %d words exceeds the per-block cap of %d"
         k.Ir.smem_words arch.Arch.shared_mem_per_block);
  (* moderate spilling is priced by the simulator and normal in the
     baseline sweep; demand beyond twice the architectural cap means the
     lowering (or its register estimate) is broken, not merely spilling *)
  if k.Ir.regs_per_thread > 2 * arch.Arch.max_regs_per_thread then
    emit
      (finding ~pass:"resources" ~severity:Error ~kernel:name
         "register demand of %d per thread is beyond twice the \
          architectural cap of %d: the lowering estimate is implausible"
         k.Ir.regs_per_thread arch.Arch.max_regs_per_thread);
  (if k.Ir.threads > 0 && k.Ir.threads <= arch.Arch.max_threads_per_sm then begin
     let occ =
       Occupancy.calculate arch
         {
           Occupancy.threads = k.Ir.threads;
           shared_words = max 0 k.Ir.smem_words;
           regs_per_thread = max 0 k.Ir.regs_per_thread;
         }
     in
     (* register spills (occ.regs_spilled_per_thread) are deliberately not
        a finding: the simulator prices them, and many legitimate baseline
        configurations spill a little.  The lint's job is schedule defects
        and hard limits. *)
     if occ.Occupancy.blocks_per_sm = 0 then
       emit
         (finding ~pass:"resources" ~severity:Error ~kernel:name
            "zero occupancy: no block fits on an SM (limited by %s)"
            (limit_name occ.Occupancy.limiting))
   end);
  dedup (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Pass 5: conformance with the analytical model's charged counts.    *)
(* ------------------------------------------------------------------ *)

let check_conformance (pr : Model.prediction) (prog : Ir.program) =
  let out = ref [] in
  let emit f = out := f :: !out in
  (match prog.Ir.kernels with
  | [] ->
      emit
        (finding ~pass:"conformance" ~severity:Error ~kernel:"host"
           "program has no kernels to check against the model")
  | k0 :: _ ->
      let sc = Model.scheduled_counts pr ~t_t:k0.Ir.t_t in
      let check name what got want =
        if got <> want then
          emit
            (finding ~pass:"conformance" ~severity:Error ~kernel:name
               "%s: IR realises %d, the model charged for %d" what got want)
      in
      List.iter
        (fun (k : Ir.kernel) ->
          let name = k.Ir.name in
          check name "per-chunk global traffic (m_io words)"
            (Ir.io_words_per_chunk k) sc.Model.sched_io_words;
          check name "shared allocation (M_tile words)" k.Ir.smem_words
            sc.Model.sched_shared_words;
          check name "chunk-loop trip count" (Ir.chunk_trips k)
            sc.Model.sched_chunks;
          check name "barriers per chunk (t_T rows + 2 staging)"
            (Ir.syncs_per_chunk k) sc.Model.sched_syncs_per_chunk)
        prog.Ir.kernels;
      (* host loop: every launch round and its width must be what
         Equations 2/3/5 charged *)
      let host = prog.Ir.host in
      let launches = host.Ir.bands * List.length host.Ir.per_band in
      check "host" "kernel launches (N_w wavefronts)" launches
        sc.Model.sched_wavefronts;
      List.iter
        (fun (l : Ir.launch) ->
          check "host"
            (Printf.sprintf "blocks launched for %s (w per wavefront)"
               l.Ir.kernel_name)
            l.Ir.blocks sc.Model.sched_wavefront_blocks;
          match
            List.find_opt
              (fun (k : Ir.kernel) -> k.Ir.name = l.Ir.kernel_name)
              prog.Ir.kernels
          with
          | None ->
              emit
                (finding ~pass:"conformance" ~severity:Error ~kernel:"host"
                   "launch names kernel %s which the program does not define"
                   l.Ir.kernel_name)
          | Some k ->
              check "host"
                (Printf.sprintf "threads launched for %s" l.Ir.kernel_name)
                l.Ir.threads k.Ir.threads)
        host.Ir.per_band;
      if not host.Ir.device_sync then
        emit
          (finding ~pass:"conformance" ~severity:Warning ~kernel:"host"
             "host loop never synchronises with the device; the model \
              charges T_sync per wavefront");
      (* family-averaged width convention: per row, green + yellow points
         must sum to twice the Refined width (t_S1 + order + 2 depth(r)) *)
      (match prog.Ir.kernels with
      | [ a; b ]
        when a.Ir.family <> b.Ir.family
             && a.Ir.t_t = b.Ir.t_t && a.Ir.t_s = b.Ir.t_s
             && a.Ir.order = b.Ir.order && a.Ir.rank = b.Ir.rank ->
          let order = a.Ir.order and t_t = a.Ir.t_t in
          let inner =
            Array.fold_left ( * ) 1 (Array.sub a.Ir.t_s 1 (a.Ir.rank - 1))
          in
          let ra = Ir.rows a and rb = Ir.rows b in
          if List.length ra = t_t && List.length rb = t_t then
            List.iteri
              (fun i ((x : Ir.row), (y : Ir.row)) ->
                let depth = order * min i (t_t - 1 - i) in
                let want =
                  2 * (a.Ir.t_s.(0) + order + (2 * depth)) * inner
                in
                if x.Ir.points + y.Ir.points <> want then
                  emit
                    (finding ~pass:"conformance" ~severity:Error
                       ~kernel:"host"
                       "row %d: green + yellow point counts %d + %d differ \
                        from the family-averaged 2*(t_S1 + order + \
                        2*depth)*inner = %d the model's c sums"
                       i x.Ir.points y.Ir.points want))
              (List.combine ra rb)
      | _ -> ()));
  dedup (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Driver.                                                            *)
(* ------------------------------------------------------------------ *)

type report = {
  problem_id : string;
  config_id : string;
  arch_name : string;
  findings : finding list;
}

let pass_names =
  [ "well-formed"; "races"; "bounds"; "banks"; "resources"; "conformance" ]

let lint_config ?(skip = []) (params : Params.t) ~(arch : Arch.t) ~citer
    problem cfg =
  List.iter
    (fun p ->
      if not (List.mem p pass_names) then
        invalid_arg (Printf.sprintf "Hexlint.lint_config: unknown pass %s" p))
    skip;
  let want p = not (List.mem p skip) in
  match Lower.ir_program problem cfg with
  | Error e -> Result.Error e
  | Ok prog -> (
      match Model.predict params ~citer problem cfg with
      | Error e -> Result.Error e
      | Ok pr ->
          let per_kernel (k : Ir.kernel) =
            let wf =
              if not (want "well-formed") then []
              else
                match Ir.validate k with
                | Ok () -> []
                | Error msg ->
                    [
                      finding ~pass:"well-formed" ~severity:Error
                        ~kernel:k.Ir.name "%s" msg;
                    ]
            in
            let banks =
              if not (want "banks") then []
              else
                match
                  Lower.workload problem cfg ~family:(hex_family k.Ir.family)
                with
                | Error msg ->
                    [
                      finding ~pass:"banks" ~severity:Error ~kernel:k.Ir.name
                        "no priced workload for this family: %s" msg;
                    ]
                | Ok wl ->
                    check_banks arch
                      ~priced_stride:wl.Hextime_gpu.Workload.row_stride k
            in
            wf
            @ (if want "races" then check_races k else [])
            @ (if want "bounds" then check_bounds k else [])
            @ banks
            @ if want "resources" then check_resources arch k else []
          in
          let findings =
            List.concat_map per_kernel prog.Ir.kernels
            @ if want "conformance" then check_conformance pr prog else []
          in
          Ok
            {
              problem_id = Problem.id problem;
              config_id = Config.id cfg;
              arch_name = arch.Arch.name;
              findings;
            })

let error_count r =
  List.length (List.filter (fun f -> f.severity = Error) r.findings)

let warning_count r =
  List.length (List.filter (fun f -> f.severity = Warning) r.findings)

let render_text r =
  let b = Buffer.create 256 in
  let head =
    Printf.sprintf "%s %s on %s" r.problem_id r.config_id r.arch_name
  in
  if r.findings = [] then Buffer.add_string b (head ^ ": clean\n")
  else begin
    Buffer.add_string b
      (Printf.sprintf "%s: %d error(s), %d warning(s)\n" head (error_count r)
         (warning_count r));
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "  [%s] %s: %s: %s\n" (severity_name f.severity)
             f.pass f.kernel f.message))
      r.findings
  end;
  Buffer.contents b

let render_sweep_text reports =
  (* identical findings repeat across hundreds of sweep configurations;
     aggregate on (pass, severity, kernel, message) and report each once
     with the number of configurations it occurred in *)
  let tbl : (finding, int * string) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      let where =
        Printf.sprintf "%s %s on %s" r.problem_id r.config_id r.arch_name
      in
      List.iter
        (fun f ->
          match Hashtbl.find_opt tbl f with
          | Some (n, first) -> Hashtbl.replace tbl f (n + 1, first)
          | None ->
              Hashtbl.add tbl f (1, where);
              order := f :: !order)
        r.findings)
    reports;
  let b = Buffer.create 256 in
  let dirty = List.length (List.filter (fun r -> r.findings <> []) reports) in
  if dirty > 0 then
    Buffer.add_string b
      (Printf.sprintf "%d distinct finding(s) across %d configuration(s):\n"
         (List.length !order) dirty);
  List.iter
    (fun f ->
      let n, first = Hashtbl.find tbl f in
      Buffer.add_string b
        (Printf.sprintf "  [%s] %s: %s: %s — %d configuration(s), e.g. %s\n"
           (severity_name f.severity) f.pass f.kernel f.message n first))
    (List.rev !order);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json reports =
  let b = Buffer.create 1024 in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  { \"problem\": %s, \"config\": %s, \"arch\": %s,\n\
           \    \"errors\": %d, \"warnings\": %d, \"findings\": ["
           (str r.problem_id) (str r.config_id) (str r.arch_name)
           (error_count r) (warning_count r));
      List.iteri
        (fun j f ->
          if j > 0 then Buffer.add_string b ",";
          Buffer.add_string b
            (Printf.sprintf
               "\n      { \"pass\": %s, \"severity\": %s, \"kernel\": %s, \
                \"message\": %s }"
               (str f.pass)
               (str (severity_name f.severity))
               (str f.kernel) (str f.message)))
        r.findings;
      if r.findings <> [] then Buffer.add_string b "\n    ";
      Buffer.add_string b "] }")
    reports;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
