(** hexlint: static-analysis passes over the lowered kernel IR.

    The analytical model ({!Hextime_core.Model}) prices a schedule it never
    sees; {!Hextime_tiling.Lower} emits the schedule the model is supposed
    to be pricing.  hexlint closes that loop: it checks the emitted IR for
    the defects the model assumes away (races, out-of-window accesses,
    bank conflicts, resource overflow) and then verifies that the IR's
    discrete counts are {e exactly} the ones the model charged for
    ({!Hextime_core.Model.scheduled_counts}).

    Each pass is exposed separately so the seeded-bug tests can mutate a
    valid kernel and assert that precisely one pass objects. *)

type severity = Error | Warning

type finding = {
  pass : string;  (** ["races"], ["bounds"], ["banks"], ["resources"],
                      ["conformance"] or ["well-formed"] *)
  severity : severity;
  kernel : string;  (** kernel name, or ["host"] for host-side findings *)
  message : string;
}

val severity_name : severity -> string

(** {1 The passes} *)

val check_races : Hextime_ir.Ir.kernel -> finding list
(** Shared-memory race detector over the double buffer.  Walks the chunk
    body with the chunk loop unrolled twice (to expose back-edge hazards)
    and tracks, per buffer half, every access since the last barrier.
    Two accesses to the same half from different statements — i.e. from
    different partitions of the thread block — with at least one write and
    no intervening [Sync] are a race ([Error]); a [Compute_row] whose read
    and write halves coincide races within itself.  A [Sync] with no
    accesses since the previous barrier is redundant ([Warning]): the
    schedule pays tau_sync for nothing. *)

val check_bounds : Hextime_ir.Ir.kernel -> finding list
(** Bounds checker for the shared-memory window (Equation 19 and its 3D
    analogue): stencil tap offsets within the halo radius, the allocation
    consistent with the declared extents, every row's idealised width plus
    halo inside the dim-0 extent, inner tile extents plus halo inside the
    inner extents, staged transfers no larger than the allocation, and —
    via {!Hextime_tiling.Hexgeom.rows_clipped} — boundary tiles of the
    exact lattice clipped to the iteration domain and never wider than the
    widest row the buffer is sized for (partial tiles shrink, they never
    grow). *)

val check_banks :
  Hextime_gpu.Arch.t ->
  priced_stride:int ->
  Hextime_ir.Ir.kernel ->
  finding list
(** Static bank-conflict analysis, cross-checked against the dynamic
    pricing in {!Hextime_gpu.Smem}.  The conflict degree of a compute
    row's stride is [gcd stride banks]; a degree above 1 is a [Warning]
    (the model deliberately ignores conflicts, Section 7, so this is cost
    the prediction will not see).  Two [Error] cases: the IR's stride
    disagreeing with [priced_stride] (the stride the simulator's workload
    was priced with — the lint and the pricing must look at the same
    schedule), and the static degree disagreeing with
    {!Hextime_gpu.Smem.conflict_factor} (cost-model drift). *)

val check_resources : Hextime_gpu.Arch.t -> Hextime_ir.Ir.kernel -> finding list
(** Resource lint: thread count a warp multiple ([Warning] otherwise —
    partial warps waste lanes) and within the per-block cap, shared
    allocation within the per-block cap, and at least one block resident
    per SM under {!Hextime_gpu.Occupancy.calculate} ([Error] otherwise,
    naming the binding limit).  Moderate register spilling is deliberately
    not a finding — the simulator prices it and legitimate configurations
    spill a little — but demand beyond twice the architectural cap is an
    [Error]: that is a broken lowering estimate, not spilling. *)

val check_conformance :
  Hextime_core.Model.prediction -> Hextime_ir.Ir.program -> finding list
(** Model-conformance pass: the IR must realise exactly the discrete
    counts the model charged for ({!Hextime_core.Model.scheduled_counts}) —
    per-chunk transfer words, shared allocation, chunk-loop trips and
    barriers per chunk for each kernel; launch rounds and blocks per
    launch for the host loop.  When both family kernels are present it
    also machine-checks the family-averaged width convention: for every
    row [r], the green and yellow point counts must sum to twice the
    Refined row width [(t_S1 + order + 2*depth(r)) * inner]. *)

(** {1 Driver} *)

type report = {
  problem_id : string;
  config_id : string;
  arch_name : string;
  findings : finding list;  (** empty iff the configuration is clean *)
}

val pass_names : string list
(** The pass identifiers accepted by [lint_config]'s [skip]. *)

val lint_config :
  ?skip:string list ->
  Hextime_core.Params.t ->
  arch:Hextime_gpu.Arch.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  Hextime_tiling.Config.t ->
  (report, string) result
(** Lower the configuration, evaluate the model, and run every pass on
    both family kernels plus the host loop.  [Error] only when lowering or
    the model itself fails (infeasible configuration); lint findings are
    reported in the [Ok] case.

    [skip] names passes to omit (see {!pass_names}; raises
    [Invalid_argument] on unknown names) — the symbolic sweep uses it to
    drop the resources and bounds passes on configurations that
    {!Hexabs.lint_clean_box} already proved finding-free box-wide. *)

val error_count : report -> int
val warning_count : report -> int

val render_text : report -> string
(** Human-readable rendering; one line per finding, or a "clean" line. *)

val render_sweep_text : report list -> string
(** Aggregated rendering for sweep mode: identical
    [(pass, severity, kernel, message)] findings across configurations
    collapse to a single line carrying the configuration count and one
    example configuration. *)

val render_json : report list -> string
(** Machine-readable rendering of a batch of reports (hand-rolled JSON:
    the repo deliberately has no JSON dependency). *)
