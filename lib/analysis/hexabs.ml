module Ints = Hextime_prelude.Ints
module Problem = Hextime_stencil.Problem
module Stencil = Hextime_stencil.Stencil
module Config = Hextime_tiling.Config
module Footprint = Hextime_tiling.Footprint
module Regalloc = Hextime_tiling.Regalloc
module Params = Hextime_core.Params
module Model = Hextime_core.Model
module Arith = Hextime_core.Arith
module Arch = Hextime_gpu.Arch
module Metrics = Hextime_obs.Metrics
module II = Arith.Int_interval
module FI = Arith.Float_interval
module ICalc = Model.Calc (Arith.Interval)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let c_boxes_feasible = Metrics.counter "hexabs.boxes_proven_feasible"
let c_boxes_infeasible = Metrics.counter "hexabs.boxes_proven_infeasible"
let c_boxes_split = Metrics.counter "hexabs.boxes_split"
let c_points_proven = Metrics.counter "hexabs.points_proven"
let c_points_enumerated = Metrics.counter "hexabs.points_enumerated"
let c_bound_evals = Metrics.counter "hexabs.bnb.evals_bound"
let c_concrete_evals = Metrics.counter "hexabs.bnb.evals_concrete"
let c_bnb_pruned = Metrics.counter "hexabs.bnb.boxes_pruned"
let c_lint_clean = Metrics.counter "hexabs.lint.boxes_proven_clean"

(* ------------------------------------------------------------------ *)
(* Lattice, boxes, congruence                                         *)
(* ------------------------------------------------------------------ *)

type axis = int array
type lattice = { tt_axis : axis; ts_axes : axis array }
type slice = { lo : int; hi : int }
type box = { b_tt : slice; b_ts : slice array }
type congruence = { modulus : int; residue : int }

let check_axis name (a : axis) =
  if Array.length a = 0 then
    invalid_arg (Printf.sprintf "Hexabs.lattice: empty %s axis" name);
  if a.(0) < 1 then
    invalid_arg (Printf.sprintf "Hexabs.lattice: non-positive %s value" name);
  for i = 1 to Array.length a - 1 do
    if a.(i) <= a.(i - 1) then
      invalid_arg
        (Printf.sprintf "Hexabs.lattice: %s axis not strictly increasing" name)
  done

let lattice ~tt ~ts =
  check_axis "t_t" tt;
  let rank = Array.length ts in
  if rank < 1 || rank > 3 then invalid_arg "Hexabs.lattice: rank must be 1..3";
  Array.iteri (fun d a -> check_axis (Printf.sprintf "t_s%d" d) a) ts;
  Array.iter
    (fun t ->
      if t mod 2 <> 0 then
        invalid_arg "Hexabs.lattice: t_t candidates must be even")
    tt;
  { tt_axis = Array.copy tt; ts_axes = Array.map Array.copy ts }

let rank l = Array.length l.ts_axes

let full_slice (a : axis) = { lo = 0; hi = Array.length a - 1 }

let full_box l =
  { b_tt = full_slice l.tt_axis; b_ts = Array.map full_slice l.ts_axes }

let slice_points s = s.hi - s.lo + 1

let box_points b =
  Array.fold_left (fun acc s -> acc * slice_points s) (slice_points b.b_tt) b.b_ts

let slice_range (a : axis) s = (a.(s.lo), a.(s.hi))

let value_ranges l b =
  (slice_range l.tt_axis b.b_tt, Array.mapi (fun d s -> slice_range l.ts_axes.(d) s) b.b_ts)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* the best congruence class covering the slice: residues of all members
   agree modulo the gcd of their differences.  A singleton slice is the
   constant congruence (modulus 0 by convention). *)
let congruence_of (a : axis) s =
  if s.lo = s.hi then { modulus = 0; residue = a.(s.lo) }
  else begin
    let v0 = a.(s.lo) in
    let g = ref 0 in
    for i = s.lo + 1 to s.hi do
      g := gcd !g (a.(i) - v0)
    done;
    let m = !g in
    { modulus = m; residue = ((v0 mod m) + m) mod m }
  end

(* does every member of the congruence class lie in residue class r mod m? *)
let congruence_implies c ~modulus ~residue =
  if modulus <= 0 then invalid_arg "Hexabs.congruence_implies";
  if c.modulus = 0 then c.residue mod modulus = residue
  else c.modulus mod modulus = 0 && c.residue mod modulus = residue

(* split the widest axis (most candidate indices) at its midpoint *)
let split b =
  let widest = ref (-1) and width = ref 1 in
  if slice_points b.b_tt > !width then begin
    widest := -1;
    width := slice_points b.b_tt
  end;
  Array.iteri
    (fun d s ->
      if slice_points s > !width then begin
        widest := d;
        width := slice_points s
      end)
    b.b_ts;
  if !width <= 1 then None
  else
    let halve s =
      let mid = (s.lo + s.hi) / 2 in
      ({ s with hi = mid }, { s with lo = mid + 1 })
    in
    Metrics.incr c_boxes_split;
    if !widest < 0 then
      let a, b' = halve b.b_tt in
      Some ({ b with b_tt = a }, { b with b_tt = b' })
    else
      let a, b' = halve b.b_ts.(!widest) in
      let left = Array.copy b.b_ts and right = Array.copy b.b_ts in
      left.(!widest) <- a;
      right.(!widest) <- b';
      Some ({ b with b_ts = left }, { b with b_ts = right })

type point = { p_tt : int; p_ts : int array }

let members l b =
  let tts = List.init (slice_points b.b_tt) (fun i -> l.tt_axis.(b.b_tt.lo + i)) in
  let dims =
    Array.to_list
      (Array.mapi
         (fun d s ->
           List.init (slice_points s) (fun i -> l.ts_axes.(d).(s.lo + i)))
         b.b_ts)
  in
  let rec product = function
    | [] -> [ [] ]
    | axis :: rest ->
        let tails = product rest in
        List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) axis
  in
  List.concat_map
    (fun p_tt ->
      List.map (fun tl -> { p_tt; p_ts = Array.of_list tl }) (product dims))
    tts

let index_of (a : axis) v =
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then Some mid
      else if a.(mid) < v then go (mid + 1) hi
      else go lo (mid - 1)
  in
  go 0 (Array.length a - 1)

let contains l b ~t_t ~t_s =
  Array.length t_s = rank l
  && (match index_of l.tt_axis t_t with
     | Some i -> b.b_tt.lo <= i && i <= b.b_tt.hi
     | None -> false)
  &&
  let ok = ref true in
  Array.iteri
    (fun d v ->
      match index_of l.ts_axes.(d) v with
      | Some i -> if not (b.b_ts.(d).lo <= i && i <= b.b_ts.(d).hi) then ok := false
      | None -> ok := false)
    t_s;
  !ok

let box_id l b =
  let (tt_lo, tt_hi), ts = value_ranges l b in
  Printf.sprintf "tT[%d..%d]-tS%s" tt_lo tt_hi
    (String.concat "x"
       (Array.to_list (Array.map (fun (lo, hi) -> Printf.sprintf "[%d..%d]" lo hi) ts)))

(* ------------------------------------------------------------------ *)
(* Symbolic feasibility (Model.feasible over a box)                   *)
(* ------------------------------------------------------------------ *)

type verdict = Feasible | Infeasible of string | Mixed of string

let verdict_name = function
  | Feasible -> "feasible"
  | Infeasible _ -> "infeasible"
  | Mixed _ -> "mixed"

let verdict_constraint = function
  | Feasible -> None
  | Infeasible c | Mixed c -> Some c

(* Model.feasible's constraints, decided over the whole box where the
   monotone structure allows.  M_tile = 2 * prod (t_s_d + order t_T + 1) *
   word_factor is strictly increasing in every coordinate, so its range
   over the box is exactly [value at the low corner, value at the high
   corner]; likewise t_s <= space is monotone per axis.  A constraint that
   holds at the worst corner holds everywhere; one violated at the best
   corner is violated everywhere. *)
let feasible_box (p : Params.t) (problem : Problem.t) l b =
  let stencil = problem.Problem.stencil in
  if rank l <> stencil.Stencil.rank then
    Infeasible "configuration rank /= problem rank"
  else begin
    let order = stencil.Stencil.order in
    let word_factor = Problem.word_factor problem in
    let (tt_lo, tt_hi), ts_ranges = value_ranges l b in
    let shared_at pick_t pick_s =
      Footprint.shared_words_of ~word_factor ~order
        ~t_t:(pick_t (tt_lo, tt_hi))
        (Array.map pick_s ts_ranges)
    in
    let cap = p.Params.shared_mem_per_block in
    let smem_min = shared_at fst fst and smem_max = shared_at snd snd in
    let extent_low_violated =
      Array.exists2 (fun (lo, _) s -> lo > s) ts_ranges problem.Problem.space
    in
    let extent_high_violated =
      Array.exists2 (fun (_, hi) s -> hi > s) ts_ranges problem.Problem.space
    in
    if smem_min > cap then Infeasible "shared-memory cap (Equation 19)"
    else if extent_low_violated then Infeasible "tile size exceeds problem extent"
    else if smem_max > cap then Mixed "shared-memory cap (Equation 19)"
    else if extent_high_violated then Mixed "tile size exceeds problem extent"
    else Feasible
  end

(* ------------------------------------------------------------------ *)
(* Interval-lifted model evaluation                                   *)
(* ------------------------------------------------------------------ *)

let interval_inputs l b =
  let (tt_lo, tt_hi), ts_ranges = value_ranges l b in
  (II.v tt_lo tt_hi, Array.map (fun (lo, hi) -> II.v lo hi) ts_ranges)

let model_terms ?variant (p : Params.t) ~citer (problem : Problem.t) l b =
  if citer <= 0.0 then invalid_arg "Hexabs.model_terms: citer must be positive";
  let t_t, t_s = interval_inputs l b in
  Metrics.incr c_bound_evals;
  ICalc.evaluate ?variant p ~citer
    ~order:problem.Problem.stencil.Stencil.order
    ~word_factor:(Problem.word_factor problem) ~space:problem.Problem.space
    ~time:problem.Problem.time ~t_t ~t_s

let talg_bounds ?variant p ~citer problem l b =
  let t = model_terms ?variant p ~citer problem l b in
  (t.ICalc.c_talg.FI.flo, t.ICalc.c_talg.FI.fhi)

(* ------------------------------------------------------------------ *)
(* Feasible-region certificate                                        *)
(* ------------------------------------------------------------------ *)

type region = {
  r_box : box;
  r_verdict : verdict;
  r_points : int;
  r_members : (point * bool) list;
      (* per-point feasibility; non-empty iff the region was enumerated *)
}

type certificate = {
  cert_total_points : int;
  cert_feasible_points : int;
  cert_proven_points : int;
  cert_enumerated_points : int;
  cert_boxes_feasible : int;
  cert_boxes_infeasible : int;
  cert_boxes_enumerated : int;
  cert_splits : int;
  cert_regions : region list;
}

let point_feasible (p : Params.t) (problem : Problem.t) pt =
  match Config.make ~t_t:pt.p_tt ~t_s:pt.p_ts ~threads:[| 128 |] with
  | Error _ -> false
  | Ok cfg -> ( match Model.feasible p problem cfg with Ok () -> true | Error _ -> false)

let prove ?(leaf = 4) (p : Params.t) (problem : Problem.t) l =
  let regions = ref [] and splits = ref 0 in
  let rec go b =
    match feasible_box p problem l b with
    | Feasible as v ->
        Metrics.incr c_boxes_feasible;
        Metrics.incr ~by:(box_points b) c_points_proven;
        regions := { r_box = b; r_verdict = v; r_points = box_points b; r_members = [] } :: !regions
    | Infeasible _ as v ->
        Metrics.incr c_boxes_infeasible;
        Metrics.incr ~by:(box_points b) c_points_proven;
        regions := { r_box = b; r_verdict = v; r_points = box_points b; r_members = [] } :: !regions
    | Mixed _ as v -> (
        if box_points b <= leaf then enumerate b v
        else
          match split b with
          | Some (x, y) ->
              incr splits;
              go x;
              go y
          | None -> enumerate b v)
  and enumerate b v =
    let pts =
      List.map (fun pt -> (pt, point_feasible p problem pt)) (members l b)
    in
    Metrics.incr ~by:(List.length pts) c_points_enumerated;
    regions := { r_box = b; r_verdict = v; r_points = box_points b; r_members = pts } :: !regions
  in
  go (full_box l);
  let regions = List.rev !regions in
  let total = box_points (full_box l) in
  let feasible_points =
    List.fold_left
      (fun acc r ->
        match r.r_verdict with
        | Feasible -> acc + r.r_points
        | Infeasible _ -> acc
        | Mixed _ ->
            acc + List.length (List.filter (fun (_, f) -> f) r.r_members))
      0 regions
  in
  let count pred = List.length (List.filter pred regions) in
  {
    cert_total_points = total;
    cert_feasible_points = feasible_points;
    cert_proven_points =
      List.fold_left
        (fun acc r -> if r.r_members = [] then acc + r.r_points else acc)
        0 regions;
    cert_enumerated_points =
      List.fold_left (fun acc r -> acc + List.length r.r_members) 0 regions;
    cert_boxes_feasible = count (fun r -> r.r_verdict = Feasible);
    cert_boxes_infeasible =
      count (fun r -> match r.r_verdict with Infeasible _ -> true | _ -> false);
    cert_boxes_enumerated = count (fun r -> r.r_members <> []);
    cert_splits = !splits;
    cert_regions = regions;
  }

let certificate_feasible cert l ~t_t ~t_s =
  let covering =
    List.find_opt (fun r -> contains l r.r_box ~t_t ~t_s) cert.cert_regions
  in
  match covering with
  | None -> None
  | Some r -> (
      match r.r_verdict with
      | Feasible -> Some true
      | Infeasible _ -> Some false
      | Mixed _ ->
          List.find_map
            (fun (pt, f) -> if pt.p_tt = t_t && pt.p_ts = t_s then Some f else None)
            r.r_members)

(* ------------------------------------------------------------------ *)
(* Verified branch-and-bound over certified Talg lower bounds         *)
(* ------------------------------------------------------------------ *)

type bnb = {
  bnb_best : point;
  bnb_talg : float;
  bnb_evals_concrete : int;
  bnb_evals_bound : int;
  bnb_boxes_pruned : int;
  bnb_boxes_enumerated : int;
  bnb_live : box list;
}

let point_talg ?variant (p : Params.t) ~citer problem pt =
  match Config.make ~t_t:pt.p_tt ~t_s:pt.p_ts ~threads:[| 128 |] with
  | Error _ -> None
  | Ok cfg -> (
      match Model.predict ?variant p ~citer problem cfg with
      | Ok pr -> Some pr.Model.talg
      | Error _ -> None)

(* representative member for incumbent seeding: the index-midpoint *)
let representative l b =
  let mid s = (s.lo + s.hi) / 2 in
  {
    p_tt = l.tt_axis.(mid b.b_tt);
    p_ts = Array.mapi (fun d s -> l.ts_axes.(d).(mid s)) b.b_ts;
  }

(* Best-first search on the certified lower bounds.  The key property
   making this exact with almost no concrete evaluations: at a singleton
   box every interval collapses and the interval evaluation IS the scalar
   evaluation (both endpoints run the same float primitives), so a
   singleton's lower bound equals its concrete Talg bit for bit.  Popping
   boxes in ascending bound order therefore terminates the moment a
   singleton surfaces at the head: its exact Talg is <= the lower bound of
   every remaining box, hence <= every remaining member's Talg.  The one
   concrete Model.predict call is a cross-check (and produces the
   prediction the caller wants). *)
let minimize ?variant ?(slack = 0.25) (p : Params.t) ~citer
    (problem : Problem.t) l =
  if citer <= 0.0 then Error "citer must be positive"
  else begin
    let evals_concrete = ref 0 and evals_bound = ref 0 in
    let pruned = ref 0 and popped = ref 0 in
    let bound b =
      incr evals_bound;
      fst (talg_bounds ?variant p ~citer problem l b)
    in
    (* worklist kept sorted by certified lower bound: the head is always
       the most promising box *)
    let insert item wl =
      let rec go = function
        | [] -> [ item ]
        | (lb, _) :: _ as rest when fst item < lb -> item :: rest
        | x :: rest -> x :: go rest
      in
      go wl
    in
    let enqueue b wl =
      match feasible_box p problem l b with
      | Infeasible _ ->
          Metrics.incr c_boxes_infeasible;
          incr pruned;
          Metrics.incr c_bnb_pruned;
          wl
      | Feasible | Mixed _ -> insert (bound b, b) wl
    in
    let rec drain = function
      | [] -> Error "no feasible point in the lattice"
      | (lb, b) :: rest ->
          incr popped;
          if box_points b = 1 then begin
            (* exact: lb is this point's Talg and no remaining box can
               beat it.  feasible_box is corner-exact on singletons, so
               the point passed enqueue's feasibility gate. *)
            let pt = representative l b in
            incr evals_concrete;
            Metrics.incr c_concrete_evals;
            match point_talg ?variant p ~citer problem pt with
            | None -> Error "hexabs: singleton argmin rejected by the model"
            | Some talg ->
                if talg <> lb then
                  Error "hexabs: singleton bound differs from Model.predict"
                else
                  let live =
                    b
                    :: List.filter_map
                         (fun (lb, b) ->
                           if lb <= talg *. (1.0 +. slack) then Some b
                           else begin
                             incr pruned;
                             Metrics.incr c_bnb_pruned;
                             None
                           end)
                         rest
                  in
                  Ok
                    {
                      bnb_best = pt;
                      bnb_talg = talg;
                      bnb_evals_concrete = !evals_concrete;
                      bnb_evals_bound = !evals_bound;
                      bnb_boxes_pruned = !pruned;
                      bnb_boxes_enumerated = !popped;
                      bnb_live = live;
                    }
          end
          else
            match split b with
            | None -> assert false (* box_points > 1 always splits *)
            | Some (x, y) -> drain (enqueue x (enqueue y rest))
    in
    drain (enqueue (full_box l) [])
  end

(* ------------------------------------------------------------------ *)
(* Symbolic lint: resources + bounds passes over boxes                *)
(* ------------------------------------------------------------------ *)

type lint_verdict = Clean | Dirty of string | Unresolved of string

let lint_verdict_name = function
  | Clean -> "clean"
  | Dirty _ -> "dirty"
  | Unresolved _ -> "unresolved"

(* The bounds pass (B2..B6) is finding-free for every Lower-generated
   kernel on any lattice with t_s >= 1 and even t_t >= 2:

   - B2: Lower allocates smem_words = 2 * word_factor * prod smem_ext by
     the same closed form the pass recomputes — margin identically 0.
   - B3: the widest row is t_s0 + 2*order*(t_t/2 - 1) (Green; Yellow adds
     its extra to both sides), and smem_ext0 = t_s0 + order*t_t + 1, so
     (smem_ext0 - 1) - (width + 2*order) = 0 — tight but never negative.
   - B5: smem_ext_d - (t_s_d + 2*order) = order*(t_t - 2) + 1 >= 1.
   - B4: staged words (t_s0 + 2*order*t_t) * prod_inner t_s_d * wf versus
     the allocation 2 * prod (t_s_d + order*t_t + 1) * wf: the leading
     factor alone satisfies 2*(t_s0 + order*t_t + 1) > t_s0 + 2*order*t_t,
     and every inner factor dominates its counterpart.
   - B6: clipping only shrinks rows (Hexgeom.rows_clipped filters and
     clamps), so no clipped row exceeds the widest unclipped row + extra.

   B1 (tap offsets within the order-halo) is the one stencil-dependent
   check, decided concretely once per problem.  The parity precondition is
   discharged with the congruence domain; the QCheck soundness suite
   cross-checks box verdicts against per-config Hexlint runs. *)
let bounds_clean_box (problem : Problem.t) l =
  let stencil = problem.Problem.stencil in
  let order = stencil.Stencil.order in
  let tt_c = congruence_of l.tt_axis (full_slice l.tt_axis) in
  if not (congruence_implies tt_c ~modulus:2 ~residue:0) then
    Unresolved "bounds: t_t axis not provably even"
  else
    let bad_offset =
      List.exists
        (fun off ->
          Array.length off <> stencil.Stencil.rank
          || Array.exists (fun o -> abs o > order) off)
        (Stencil.offsets stencil)
    in
    if bad_offset then Dirty "bounds: tap offset beyond the order halo"
    else Clean

(* Resource-pass findings over a box, at a thread-count slice of the given
   axis.  Every quantity is evaluated with the same interval arithmetic the
   model uses; the congruence domain discharges the warp-multiple warning
   for the whole thread axis at once. *)
let resources_clean_box (arch : Arch.t) (problem : Problem.t) l b
    ~(threads_axis : axis) ~(threads : slice) =
  let module A = Arith.Interval in
  let stencil = problem.Problem.stencil in
  let order = stencil.Stencil.order in
  let word_factor = Problem.word_factor problem in
  let t_t, t_s = interval_inputs l b in
  let thr = II.v threads_axis.(threads.lo) threads_axis.(threads.hi) in
  let thr_c = congruence_of threads_axis threads in
  (* M_tile, as the resources pass sees it (Lower's allocation) *)
  let smem =
    A.( * )
      (A.( * ) (A.int 2)
         (Array.fold_left
            (fun acc s ->
              A.( * ) acc
                (A.( + ) (A.( + ) s (A.( * ) (A.int order) t_t)) (A.int 1)))
            (A.int 1) t_s))
      (A.int word_factor)
  in
  (* Regalloc.per_thread at the Yellow family's widest row (the worst of
     the two family kernels: base is wider by 2*order) *)
  let inner =
    Array.fold_left (fun acc s -> A.( * ) acc s) (A.int 1)
      (Array.sub t_s 1 (Array.length t_s - 1))
  in
  let widest_base = A.( + ) t_s.(0) (A.int (2 * order)) in
  let max_row_points =
    A.imax (A.int 1)
      (A.( * )
         (A.( + ) widest_base
            (A.( * ) (A.int (2 * order))
               (A.( - ) (A.tdiv t_t (A.int 2)) (A.int 1))))
         inner)
  in
  let regs =
    A.( + )
      (A.int (14 + (2 * stencil.Stencil.loads) + (3 * stencil.Stencil.rank)))
      (A.( * ) (A.int 2) (A.ceil_div max_row_points thr))
  in
  let regs_held = A.imin regs (A.int arch.Arch.max_regs_per_thread) in
  let regs_per_sm = A.( * ) regs_held thr in
  let thr_lo = thr.II.ilo and thr_hi = thr.II.ihi in
  if thr_hi > arch.Arch.max_threads_per_block then
    if thr_lo > arch.Arch.max_threads_per_block then
      Dirty "resources: threads exceed the per-block cap"
    else Unresolved "resources: threads straddle the per-block cap"
  else if not (congruence_implies thr_c ~modulus:arch.Arch.warp_size ~residue:0)
  then Unresolved "resources: threads not provably warp multiples"
  else if smem.II.ilo > arch.Arch.shared_mem_per_block then
    Dirty "resources: shared allocation exceeds the per-block cap"
  else if smem.II.ihi > arch.Arch.shared_mem_per_block then
    Unresolved "resources: shared allocation straddles the per-block cap"
  else if regs.II.ilo > 2 * arch.Arch.max_regs_per_thread then
    Dirty "resources: register demand beyond twice the architectural cap"
  else if regs.II.ihi > 2 * arch.Arch.max_regs_per_thread then
    Unresolved "resources: register demand straddles twice the cap"
  else if thr_hi > arch.Arch.max_threads_per_sm then
    Unresolved "resources: threads beyond the per-SM thread slots"
  else if smem.II.ihi > arch.Arch.shared_mem_per_sm then
    Dirty "resources: zero occupancy (shared memory)"
  else if regs_per_sm.II.ihi > arch.Arch.registers_per_sm then
    Unresolved "resources: occupancy may hit the register file"
  else Clean

let lint_clean_box arch problem l b ~threads_axis ~threads =
  match bounds_clean_box problem l with
  | Clean -> (
      match resources_clean_box arch problem l b ~threads_axis ~threads with
      | Clean ->
          Metrics.incr c_lint_clean;
          Clean
      | v -> v)
  | v -> v

let prove_clean ?(leaf = 4) arch problem l ~threads_axis ~threads =
  let rec go b acc =
    match lint_clean_box arch problem l b ~threads_axis ~threads with
    | Clean -> (b, Clean) :: acc
    | Dirty _ as v -> (b, v) :: acc
    | Unresolved _ as v -> (
        if box_points b <= leaf then (b, v) :: acc
        else
          match split b with
          | None -> (b, v) :: acc
          | Some (x, y) ->
              Metrics.incr c_boxes_split;
              go y (go x acc))
  in
  List.rev (go (full_box l) [])

(* the congruence-domain bank-stride fact: the inner-dimension row stride
   (t_s_inner + order * t_t) * word_factor + 1 of every member config.
   With a warp-multiple inner axis and an even t_t axis the class is odd,
   i.e. coprime to the 32 banks — the whole box is conflict-free. *)
let stride_congruence (problem : Problem.t) l b =
  let stencil = problem.Problem.stencil in
  let order = stencil.Stencil.order in
  let word_factor = Problem.word_factor problem in
  let r = rank l in
  let inner_c = congruence_of l.ts_axes.(r - 1) b.b_ts.(r - 1) in
  let tt_c = congruence_of l.tt_axis b.b_tt in
  let combine a b =
    (* congruence of a + b *)
    if a.modulus = 0 && b.modulus = 0 then
      { modulus = 0; residue = a.residue + b.residue }
    else
      let m = gcd a.modulus b.modulus in
      let m = if m = 0 then max a.modulus b.modulus else m in
      { modulus = m; residue = (((a.residue + b.residue) mod m) + m) mod m }
  in
  let scale k c =
    if c.modulus = 0 then { modulus = 0; residue = k * c.residue }
    else { modulus = k * c.modulus; residue = k * c.residue mod (k * c.modulus) }
  in
  let base = combine inner_c (scale order tt_c) in
  let scaled = scale word_factor base in
  combine scaled { modulus = 0; residue = 1 }
