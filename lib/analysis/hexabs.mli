(** hexabs: abstract interpretation over the tile-parameter space.

    Everything upstream of this module reasons about one configuration at
    a time; hexabs reasons about whole {e regions}.  The abstract state is
    a box — a contiguous slice of the sorted candidate axis per coordinate
    (t_T and the tile extents), as exported by
    [Hextime_tileopt.Space.axes] — refined by a congruence domain (warp
    multiples on the inner axis, parity on t_T).

    Three cooperating analyses:

    - {!feasible_box} decides {!Hextime_core.Model.feasible} over a box.
      M_tile is strictly monotone in every coordinate, so corner
      evaluation is exact: a box is proven [Feasible], proven
      [Infeasible], or [Mixed] with the binding constraint named.
      {!prove} drives this to a disjoint certificate of the whole lattice,
      splitting [Mixed] boxes and enumerating only the leaves the
      monotone boundary actually crosses.
    - {!talg_bounds} evaluates the model's term structure through
      [Model.Calc (Arith.Interval)], giving a certified enclosure of Talg
      over the box; {!minimize} is the branch-and-bound optimizer built on
      the lower bounds — exact (same arg-min value as exhaustive
      enumeration) with a fraction of the concrete evaluations.
    - {!lint_clean_box} re-expresses the hexlint resource and bounds
      passes over boxes, so a sweep can prove whole sub-lattices
      finding-free and only run those passes on configurations in
      [Unresolved] boxes.

    Counters ([hexabs.boxes_proven_*], [hexabs.bnb.evals_*], ...) are
    registered with {!Hextime_obs.Metrics}. *)

(** {1 Lattice and boxes} *)

type axis = int array
(** Sorted, strictly increasing, positive candidate values. *)

type lattice = { tt_axis : axis; ts_axes : axis array }

type slice = { lo : int; hi : int }
(** Inclusive index range into an axis. *)

type box = { b_tt : slice; b_ts : slice array }

type congruence = { modulus : int; residue : int }
(** The set [{ residue + k * modulus }]; [modulus = 0] means the constant
    [residue]. *)

val lattice : tt:axis -> ts:axis array -> lattice
(** Validates and copies the axes.  Raises [Invalid_argument] on empty,
    unsorted or non-positive axes, rank outside 1..3, or odd t_t
    candidates. *)

val rank : lattice -> int
val full_box : lattice -> box
val box_points : box -> int

val value_ranges : lattice -> box -> (int * int) * (int * int) array
(** [(t_t range, per-dimension tile-size ranges)], as values. *)

val congruence_of : axis -> slice -> congruence
(** The best congruence class covering the slice's values. *)

val congruence_implies : congruence -> modulus:int -> residue:int -> bool
(** Does every member of the class lie in [residue] mod [modulus]? *)

val split : box -> (box * box) option
(** Halve the widest axis at its index midpoint; [None] if the box is a
    single point. *)

type point = { p_tt : int; p_ts : int array }

val members : lattice -> box -> point list
val contains : lattice -> box -> t_t:int -> t_s:int array -> bool
val index_of : axis -> int -> int option
val box_id : lattice -> box -> string

(** {1 Symbolic feasibility} *)

type verdict = Feasible | Infeasible of string | Mixed of string
(** Box-level outcome of {!Hextime_core.Model.feasible}; the payload names
    the binding constraint. *)

val verdict_name : verdict -> string
val verdict_constraint : verdict -> string option

val feasible_box :
  Hextime_core.Params.t -> Hextime_stencil.Problem.t -> lattice -> box ->
  verdict
(** Sound and corner-exact: [Feasible] / [Infeasible] verdicts hold for
    every member configuration; [Mixed] means the feasibility boundary
    crosses the box. *)

(** {1 Interval-lifted model} *)

module ICalc : sig
  type terms = Hextime_core.Model.Calc(Hextime_core.Arith.Interval).terms
end

val model_terms :
  ?variant:Hextime_core.Model.variant ->
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  lattice ->
  box ->
  Hextime_core.Model.Calc(Hextime_core.Arith.Interval).terms
(** Every model term as a certified enclosure over the box.  Raises
    [Invalid_argument] if [citer <= 0]. *)

val talg_bounds :
  ?variant:Hextime_core.Model.variant ->
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  lattice ->
  box ->
  float * float
(** [(lo, hi)] with the concrete [Model.predict] Talg of every member
    configuration inside. *)

(** {1 Feasible-region certificate} *)

type region = {
  r_box : box;
  r_verdict : verdict;
  r_points : int;
  r_members : (point * bool) list;
      (** per-point concrete feasibility; non-empty iff the region was a
          [Mixed] leaf the prover had to enumerate *)
}

type certificate = {
  cert_total_points : int;
  cert_feasible_points : int;  (** exact count over the whole lattice *)
  cert_proven_points : int;  (** points covered by proven boxes *)
  cert_enumerated_points : int;  (** points the prover fell back to *)
  cert_boxes_feasible : int;
  cert_boxes_infeasible : int;
  cert_boxes_enumerated : int;
  cert_splits : int;
  cert_regions : region list;  (** disjoint cover of the lattice *)
}

val prove :
  ?leaf:int ->
  Hextime_core.Params.t -> Hextime_stencil.Problem.t -> lattice -> certificate
(** Certify the feasible region: split [Mixed] boxes until proven or at
    most [leaf] points (default 4), then enumerate the stragglers
    concretely.  The certificate agrees with per-point
    [Model.feasible] everywhere — the boundary is a monotone staircase,
    so the enumerated fraction stays small. *)

val certificate_feasible :
  certificate -> lattice -> t_t:int -> t_s:int array -> bool option
(** Feasibility of one lattice point according to the certificate; [None]
    if the point is not on the lattice. *)

val point_feasible :
  Hextime_core.Params.t -> Hextime_stencil.Problem.t -> point -> bool
(** Concrete [Model.feasible] at a lattice point (threads fixed at 128 —
    the model ignores thread counts). *)

(** {1 Branch-and-bound} *)

type bnb = {
  bnb_best : point;
  bnb_talg : float;
  bnb_evals_concrete : int;  (** Model.predict calls spent *)
  bnb_evals_bound : int;  (** interval evaluations spent *)
  bnb_boxes_pruned : int;
  bnb_boxes_enumerated : int;
  bnb_live : box list;
      (** boxes whose certified lower bound is within [slack] of the
          optimum — the restart-seed regions for {!Hextime_tileopt}'s
          descent *)
}

val point_talg :
  ?variant:Hextime_core.Model.variant ->
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  point ->
  float option

val representative : lattice -> box -> point
(** The index-midpoint member (deterministic). *)

val minimize :
  ?variant:Hextime_core.Model.variant ->
  ?slack:float ->
  Hextime_core.Params.t ->
  citer:float ->
  Hextime_stencil.Problem.t ->
  lattice ->
  (bnb, string) result
(** Best-first branch-and-bound on the certified lower bounds: always pop
    the box with the least bound and split it.  At a singleton box the
    interval evaluation collapses to the scalar one (bit for bit), so the
    first singleton popped {e is} the arg-min — its exact Talg is below
    the certified lower bound of every remaining box.  The single
    concrete [Model.predict] call cross-checks that identity.  The
    returned Talg equals the exhaustive minimum over the feasible
    lattice; [bnb_live] collects the still-unsplit boxes whose bound is
    within [slack] (default 0.25) of the optimum. *)

(** {1 Symbolic lint} *)

type lint_verdict = Clean | Dirty of string | Unresolved of string
(** [Clean]: the hexlint resource and bounds passes produce no findings
    for {e any} member configuration (both family kernels).  [Dirty]:
    every member produces the named finding.  [Unresolved]: the box
    straddles a threshold — fall back to per-configuration linting. *)

val lint_verdict_name : lint_verdict -> string

val lint_clean_box :
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  lattice ->
  box ->
  threads_axis:axis ->
  threads:slice ->
  lint_verdict
(** The resources and bounds passes over a box, for every thread count in
    the slice at once: interval arithmetic for the capacity and occupancy
    thresholds, the congruence domain for the warp-multiple warning and
    the t_T parity precondition, and the closed-form margins (documented
    in the implementation) for the window-bounds checks. *)

val prove_clean :
  ?leaf:int ->
  Hextime_gpu.Arch.t ->
  Hextime_stencil.Problem.t ->
  lattice ->
  threads_axis:axis ->
  threads:slice ->
  (box * lint_verdict) list
(** Disjoint cover of the whole lattice by {!lint_clean_box} verdicts:
    [Unresolved] boxes are split until proven or at most [leaf] points
    (default 4).  A sweep can skip the resources and bounds passes on
    every configuration inside a [Clean] box and fall back to
    per-configuration linting only inside the leftover leaves. *)

val stride_congruence :
  Hextime_stencil.Problem.t -> lattice -> box -> congruence
(** The congruence class of the inner-dimension shared-memory row stride
    [(t_s_inner + order * t_t) * word_factor + 1] over the box.  On a
    warp-multiple inner axis with even t_T the class is odd — coprime to
    the 32 banks, so the whole box is provably conflict-free. *)
